//! The reference interpreter: the original, un-decoded step semantics,
//! executing straight from the linked `Instr` array.
//!
//! This is the differential-testing oracle for the pre-decoded fast
//! path (`Exec::step_decoded`): `crates/sim/tests/decode_equiv.rs`
//! runs every workload and a generated kernel corpus through both
//! modes and requires identical launch results, stats and memory. Keep
//! the semantics here boring and literal; optimizations belong in the
//! decoded loop.

use super::*;
use crate::stats::IssueClass;
use sassi_isa::{Instr, Label, Op, Src};

impl Exec<'_> {
    fn const_read(&self, bank: u8, offset: u16) -> u32 {
        if bank != 0 {
            return 0;
        }
        self.c0_read(offset)
    }

    fn src_val(&self, w: &Warp, lane: usize, s: &Src) -> u32 {
        match s {
            Src::Reg(r) => w.reg(lane, *r),
            Src::Imm(v) => *v,
            Src::Const(c) => self.const_read(c.bank, c.offset),
        }
    }

    fn guard_mask(&self, w: &Warp, ins: &Instr) -> LaneMask {
        if ins.guard.is_always() {
            return w.active;
        }
        let mut m = 0u32;
        for lane in w.active_lanes() {
            let p = w.pred(lane, ins.guard.pred);
            if p != ins.guard.neg {
                m |= 1 << lane;
            }
        }
        m
    }

    /// Executes one instruction of warp `wi` from the `Instr` array.
    /// Returns a fault kind on abort.
    pub(super) fn step_reference(&mut self, wi: usize) -> Result<(), FaultKind> {
        // Copying the long-lived reference out of `self` unties the
        // instruction from the `&mut self` borrow.
        let module: &Module = self.module;
        let pc = self.warps[wi].pc;
        if pc as usize >= module.code.len() {
            return Err(FaultKind::InvalidPc { pc: pc as u64 });
        }
        let ins = &module.code[pc as usize];
        let mask = self.guard_mask(&self.warps[wi], ins);
        self.stats.warp_instrs += 1;
        self.stats.thread_instrs += mask.count_ones() as u64;
        self.stats.issue.bump(IssueClass::of(&ins.class()));

        let mut lat: u64 = 2; // default ALU dependence latency
        match &ins.op {
            // ---- control flow ------------------------------------------------
            Op::Ssy { target } => {
                let t = target_pc(target)?;
                let w = &mut self.warps[wi];
                w.stack.push(crate::warp::StackEntry::Ssy {
                    reconv: t,
                    mask: w.active,
                });
                w.pc += 1;
                finish(&mut self.warps[wi], self.cycle, 1);
                return Ok(());
            }
            Op::Bra { target, .. } => {
                let t = target_pc(target)?;
                if (t as usize) > module.code.len() {
                    return Err(FaultKind::InvalidPc { pc: t as u64 });
                }
                let w = &mut self.warps[wi];
                if ins.is_guarded() {
                    self.stats.cond_branches += 1;
                }
                if w.branch(t, mask) {
                    self.stats.divergent_branches += 1;
                }
                finish(&mut self.warps[wi], self.cycle, 2);
                return Ok(());
            }
            Op::Sync => {
                let w = &mut self.warps[wi];
                if ins.is_guarded() {
                    // A predicated SYNC is a conditional control
                    // transfer: lanes that pass the guard park, the
                    // rest fall through.
                    self.stats.cond_branches += 1;
                    if mask != 0 && mask != w.active {
                        self.stats.divergent_branches += 1;
                    }
                }
                w.sync(mask);
                finish(&mut self.warps[wi], self.cycle, 2);
                return Ok(());
            }
            Op::Exit => {
                let w = &mut self.warps[wi];
                if ins.is_guarded() {
                    self.stats.cond_branches += 1;
                    if mask != 0 && mask != w.active {
                        self.stats.divergent_branches += 1;
                    }
                }
                w.exit_lanes(mask);
                finish(&mut self.warps[wi], self.cycle, 1);
                return Ok(());
            }
            Op::Jcal { target } => {
                match target {
                    Label::Pc(t) => {
                        let w = &mut self.warps[wi];
                        w.call_stack.push(w.pc + 1);
                        w.pc = *t;
                        lat = 4;
                    }
                    Label::Handler(id) => {
                        let id = *id;
                        self.stats.handler_calls += 1;
                        // The decoded µop carries its site index; here
                        // we look it up from the (shared) site table.
                        let site = self.decoded.site_at(pc).unwrap_or(u32::MAX);
                        let cost = {
                            let warp = &mut self.warps[wi];
                            let cta = &mut self.ctas[warp.cta];
                            let mut ctx = TrapCtx {
                                warp,
                                shared: &mut cta.shared,
                                mem: self.mem,
                                ctaid: cta.ctaid,
                                block_dim: self.dims.block,
                                grid_dim: self.dims.grid,
                                sm_id: self.sm_id,
                                cycle: self.cycle,
                                kernel: &self.kernel.name,
                                launch_index: self.launch_index,
                            };
                            self.runtime
                                .handle(crate::trap::TrapRef { site, handler: id }, &mut ctx)
                        };
                        let cycles = cost.cycles();
                        self.stats.handler_cycles += cycles;
                        self.warps[wi].pc += 1;
                        lat = 4 + cycles;
                    }
                    Label::Func(_) => return Err(FaultKind::InvalidPc { pc: pc as u64 }),
                }
                finish(&mut self.warps[wi], self.cycle, lat);
                return Ok(());
            }
            Op::Ret => {
                let w = &mut self.warps[wi];
                match w.call_stack.pop() {
                    Some(r) => w.pc = r,
                    None => return Err(FaultKind::CallStackUnderflow),
                }
                finish(&mut self.warps[wi], self.cycle, 4);
                return Ok(());
            }
            Op::BarSync => {
                let cta_idx = self.warps[wi].cta;
                {
                    let w = &mut self.warps[wi];
                    w.pc += 1;
                    w.status = WarpStatus::AtBarrier;
                    w.ready_at = self.cycle + 1;
                }
                self.ctas[cta_idx].warps_at_barrier += 1;
                self.maybe_release_barrier(cta_idx);
                return Ok(());
            }

            // ---- memory -----------------------------------------------------
            Op::Ld { d, width, addr, .. } => {
                self.mem_load(wi, mask, *d, *width, addr, false)?;
                self.warps[wi].pc += 1;
                return Ok(());
            }
            Op::Tld { d, width, addr } => {
                self.mem_load(wi, mask, *d, *width, addr, true)?;
                self.warps[wi].pc += 1;
                return Ok(());
            }
            Op::St { v, width, addr, .. } => {
                self.mem_store(wi, mask, *v, *width, addr)?;
                self.warps[wi].pc += 1;
                return Ok(());
            }
            Op::Atom {
                d,
                op,
                addr,
                v,
                v2,
                wide,
            } => {
                self.mem_atomic(wi, mask, Some(*d), *op, addr, *v, *v2, *wide)?;
                self.warps[wi].pc += 1;
                return Ok(());
            }
            Op::Red { op, addr, v, wide } => {
                self.mem_atomic(wi, mask, None, *op, addr, *v, None, *wide)?;
                self.warps[wi].pc += 1;
                return Ok(());
            }
            Op::MemBar => lat = 8,

            // ---- warp-wide ---------------------------------------------------
            Op::Vote {
                mode,
                d,
                p_out,
                src,
                neg_src,
            } => {
                let w = &mut self.warps[wi];
                let mut ballot: u32 = 0;
                for lane in 0..32 {
                    if mask & (1 << lane) != 0 {
                        let v = w.pred(lane, *src) != *neg_src;
                        if v {
                            ballot |= 1 << lane;
                        }
                    }
                }
                let all = ballot & mask == mask && mask != 0;
                let any = ballot != 0;
                for lane in 0..32 {
                    if mask & (1 << lane) != 0 {
                        match mode {
                            VoteMode::Ballot => w.set_reg(lane, *d, ballot),
                            VoteMode::All => w.set_reg(lane, *d, all as u32),
                            VoteMode::Any => w.set_reg(lane, *d, any as u32),
                        }
                        if let Some(p) = p_out {
                            let v = match mode {
                                VoteMode::All => all,
                                VoteMode::Any => any,
                                VoteMode::Ballot => ballot != 0,
                            };
                            w.set_pred(lane, *p, v);
                        }
                    }
                }
            }
            Op::Shfl {
                mode,
                d,
                a,
                b,
                c: _,
                p_out,
            } => {
                let w = &self.warps[wi];
                let mut snapshot = [0u32; 32];
                for (l, s) in snapshot.iter_mut().enumerate() {
                    *s = w.reg(l, *a);
                }
                for lane in 0..32usize {
                    if mask & (1 << lane) == 0 {
                        continue;
                    }
                    let bv = self.src_val(&self.warps[wi], lane, b);
                    let src_lane = match mode {
                        ShflMode::Idx => (bv & 31) as usize,
                        ShflMode::Up => lane.wrapping_sub(bv as usize),
                        ShflMode::Down => lane + bv as usize,
                        ShflMode::Bfly => lane ^ (bv as usize & 31),
                    };
                    let in_range = src_lane < 32 && (mask & (1 << src_lane)) != 0;
                    let val = if in_range {
                        snapshot[src_lane]
                    } else {
                        snapshot[lane]
                    };
                    let w = &mut self.warps[wi];
                    w.set_reg(lane, *d, val);
                    if let Some(p) = p_out {
                        w.set_pred(lane, *p, in_range);
                    }
                }
            }

            // ---- per-lane ALU -------------------------------------------------
            _ => {
                self.alu_reference(wi, ins, mask);
                lat = alu_latency(&ins.op);
            }
        }
        let w = &mut self.warps[wi];
        w.pc += 1;
        finish(w, self.cycle, lat);
        Ok(())
    }

    /// Per-lane ALU execution for all remaining opcodes.
    fn alu_reference(&mut self, wi: usize, ins: &Instr, mask: LaneMask) {
        for lane in 0..32usize {
            if mask & (1 << lane) == 0 {
                continue;
            }
            // Read phase (immutable).
            let w = &self.warps[wi];
            enum Out {
                R(Gpr, u32),
                P(sassi_isa::PredReg, bool),
                RCc(Gpr, u32, bool),
                Preds(u8),
                None,
            }
            let out = match &ins.op {
                Op::Mov { d, a } => Out::R(*d, self.src_val(w, lane, a)),
                Op::Mov32I { d, imm } => Out::R(*d, *imm),
                Op::S2R { d, sr } => Out::R(*d, self.special(w, lane, *sr)),
                Op::IAdd { d, a, b, x, cc } => {
                    let av = w.reg(lane, *a) as u64;
                    let bv = self.src_val(w, lane, b) as u64;
                    let cin = if *x { w.cc[lane] as u64 } else { 0 };
                    let sum = av + bv + cin;
                    if *cc {
                        Out::RCc(*d, sum as u32, sum >> 32 != 0)
                    } else {
                        Out::R(*d, sum as u32)
                    }
                }
                Op::ISub { d, a, b } => {
                    Out::R(*d, w.reg(lane, *a).wrapping_sub(self.src_val(w, lane, b)))
                }
                Op::IMul {
                    d,
                    a,
                    b,
                    signed,
                    hi,
                } => {
                    let av = w.reg(lane, *a);
                    let bv = self.src_val(w, lane, b);
                    let v = if *signed {
                        let p = (av as i32 as i64) * (bv as i32 as i64);
                        if *hi {
                            (p >> 32) as u32
                        } else {
                            p as u32
                        }
                    } else {
                        let p = (av as u64) * (bv as u64);
                        if *hi {
                            (p >> 32) as u32
                        } else {
                            p as u32
                        }
                    };
                    Out::R(*d, v)
                }
                Op::IMad { d, a, b, c } => {
                    let v = w
                        .reg(lane, *a)
                        .wrapping_mul(self.src_val(w, lane, b))
                        .wrapping_add(w.reg(lane, *c));
                    Out::R(*d, v)
                }
                Op::IScAdd { d, a, b, shift } => {
                    let v = (w.reg(lane, *a) << shift).wrapping_add(self.src_val(w, lane, b));
                    Out::R(*d, v)
                }
                Op::IMnMx {
                    d,
                    a,
                    b,
                    min,
                    signed,
                } => {
                    let av = w.reg(lane, *a);
                    let bv = self.src_val(w, lane, b);
                    let v = match (signed, min) {
                        (true, true) => (av as i32).min(bv as i32) as u32,
                        (true, false) => (av as i32).max(bv as i32) as u32,
                        (false, true) => av.min(bv),
                        (false, false) => av.max(bv),
                    };
                    Out::R(*d, v)
                }
                Op::Shl { d, a, b } => {
                    let s = self.src_val(w, lane, b);
                    let v = if s >= 32 { 0 } else { w.reg(lane, *a) << s };
                    Out::R(*d, v)
                }
                Op::Shr { d, a, b, signed } => {
                    let s = self.src_val(w, lane, b);
                    let av = w.reg(lane, *a);
                    let v = if *signed {
                        if s >= 32 {
                            ((av as i32) >> 31) as u32
                        } else {
                            ((av as i32) >> s) as u32
                        }
                    } else if s >= 32 {
                        0
                    } else {
                        av >> s
                    };
                    Out::R(*d, v)
                }
                Op::Lop { d, op, a, b, inv_b } => {
                    let av = w.reg(lane, *a);
                    let mut bv = self.src_val(w, lane, b);
                    if *inv_b {
                        bv = !bv;
                    }
                    Out::R(*d, op.eval(av, bv))
                }
                Op::Popc { d, a } => Out::R(*d, w.reg(lane, *a).count_ones()),
                Op::Flo { d, a } => {
                    let av = w.reg(lane, *a);
                    Out::R(
                        *d,
                        if av == 0 {
                            u32::MAX
                        } else {
                            31 - av.leading_zeros()
                        },
                    )
                }
                Op::Brev { d, a } => Out::R(*d, w.reg(lane, *a).reverse_bits()),
                Op::Sel { d, a, b, p, neg_p } => {
                    let take_a = w.pred(lane, *p) != *neg_p;
                    let v = if take_a {
                        w.reg(lane, *a)
                    } else {
                        self.src_val(w, lane, b)
                    };
                    Out::R(*d, v)
                }
                Op::FAdd {
                    d,
                    a,
                    b,
                    neg_a,
                    neg_b,
                } => {
                    let mut av = f32::from_bits(w.reg(lane, *a));
                    let mut bv = f32::from_bits(self.src_val(w, lane, b));
                    if *neg_a {
                        av = -av;
                    }
                    if *neg_b {
                        bv = -bv;
                    }
                    Out::R(*d, (av + bv).to_bits())
                }
                Op::FMul { d, a, b } => {
                    let av = f32::from_bits(w.reg(lane, *a));
                    let bv = f32::from_bits(self.src_val(w, lane, b));
                    Out::R(*d, (av * bv).to_bits())
                }
                Op::FFma {
                    d,
                    a,
                    b,
                    c,
                    neg_b,
                    neg_c,
                } => {
                    let av = f32::from_bits(w.reg(lane, *a));
                    let mut bv = f32::from_bits(self.src_val(w, lane, b));
                    let mut cv = f32::from_bits(w.reg(lane, *c));
                    if *neg_b {
                        bv = -bv;
                    }
                    if *neg_c {
                        cv = -cv;
                    }
                    Out::R(*d, av.mul_add(bv, cv).to_bits())
                }
                Op::FMnMx { d, a, b, min } => {
                    let av = f32::from_bits(w.reg(lane, *a));
                    let bv = f32::from_bits(self.src_val(w, lane, b));
                    let v = if *min { av.min(bv) } else { av.max(bv) };
                    Out::R(*d, v.to_bits())
                }
                Op::Mufu { d, func, a } => {
                    let av = f32::from_bits(w.reg(lane, *a));
                    Out::R(*d, func.eval(av).to_bits())
                }
                Op::I2F { d, a, .. } => Out::R(*d, (w.reg(lane, *a) as i32 as f32).to_bits()),
                Op::F2I { d, a, .. } => Out::R(*d, f32::from_bits(w.reg(lane, *a)) as i32 as u32),
                Op::ISetP {
                    p,
                    cmp,
                    a,
                    b,
                    signed,
                    combine,
                } => {
                    let av = w.reg(lane, *a);
                    let bv = self.src_val(w, lane, b);
                    let base = if *signed {
                        cmp.eval_i64(av as i32 as i64, bv as i32 as i64)
                    } else {
                        cmp.eval_i64(av as i64, bv as i64)
                    };
                    let v = match combine {
                        None => base,
                        Some((cp, neg)) => base && (w.pred(lane, *cp) != *neg),
                    };
                    Out::P(*p, v)
                }
                Op::FSetP { p, cmp, a, b } => {
                    let av = f32::from_bits(w.reg(lane, *a));
                    let bv = f32::from_bits(self.src_val(w, lane, b));
                    Out::P(*p, cmp.eval_f32(av, bv))
                }
                Op::PSetP {
                    p,
                    op,
                    a,
                    b,
                    neg_a,
                    neg_b,
                } => {
                    let av = w.pred(lane, *a) != *neg_a;
                    let bv = w.pred(lane, *b) != *neg_b;
                    let v = match op {
                        LogicOp::And => av && bv,
                        LogicOp::Or => av || bv,
                        LogicOp::Xor => av != bv,
                        LogicOp::PassB => bv,
                    };
                    Out::P(*p, v)
                }
                Op::P2R { d } => Out::R(*d, w.preds[lane] as u32 & 0x7f),
                Op::R2P { a } => Out::Preds((w.reg(lane, *a) & 0x7f) as u8),
                Op::Nop => Out::None,
                // Handled in `step_reference`.
                _ => Out::None,
            };
            // Write phase.
            let w = &mut self.warps[wi];
            match out {
                Out::R(d, v) => w.set_reg(lane, d, v),
                Out::P(p, v) => w.set_pred(lane, p, v),
                Out::RCc(d, v, c) => {
                    w.set_reg(lane, d, v);
                    w.cc[lane] = c;
                }
                Out::Preds(bits) => w.preds[lane] = bits,
                Out::None => {}
            }
        }
    }
}

fn target_pc(l: &Label) -> Result<u32, FaultKind> {
    match l {
        Label::Pc(t) => Ok(*t),
        _ => Err(FaultKind::InvalidPc { pc: u64::MAX }),
    }
}

fn alu_latency(op: &Op) -> u64 {
    match op {
        Op::Mufu { .. } => 8,
        Op::IMul { .. } | Op::IMad { .. } => 4,
        Op::I2F { .. } | Op::F2I { .. } => 4,
        _ => 2,
    }
}
