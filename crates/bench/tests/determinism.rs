//! The campaign engine's core guarantee: sweep results are
//! byte-identical for any `--jobs` value.
//!
//! These tests run the same sweeps the `repro` binary runs (through
//! `sassi_bench::campaigns`), once with 1 worker and once with 4, and
//! compare the *serialized* results — the same bytes `save_json`
//! writes under `results/`.

use sassi_bench::campaigns;
use sassi_studies::{branch, inject, memdiv, value};
use sassi_workloads::by_name;
use serde::Serialize;

fn json<T: Serialize>(v: &T) -> String {
    serde_json::to_string_pretty(v).expect("serialize")
}

#[test]
fn injection_campaign_is_identical_across_job_counts() {
    let names = vec![String::from("nn")];
    let (serial, t1) = campaigns::fig10_named(&names, 8, 0xD15EA5E, 1);
    let (parallel, t4) = campaigns::fig10_named(&names, 8, 0xD15EA5E, 4);
    assert_eq!(json(&serial), json(&parallel));
    // Two engine passes per campaign: planning (1 unit) + injections (8).
    assert_eq!(t1.units, 9);
    assert_eq!(t4.units, 9);
    assert_eq!(t1.jobs, 1);
    // One workload in the plan pass clamps the pool; the injection
    // pass runs all 4 workers.
    assert!(serial[0].runs == 8);
}

#[test]
fn site_lists_are_a_pure_function_of_the_campaign_inputs() {
    let w = by_name("nn").expect("nn workload");
    let a = inject::plan_campaign(w.as_ref(), 12, 99);
    let b = inject::plan_campaign(w.as_ref(), 12, 99);
    assert_eq!(a.watchdog, b.watchdog);
    assert_eq!(json(&a.sites), json(&b.sites));
    // Site k must not depend on how many sites were drawn with it:
    // a 4-site plan is a strict prefix of the 12-site plan.
    let prefix = inject::plan_campaign(w.as_ref(), 4, 99);
    assert_eq!(json(&prefix.sites), json(&a.sites[..4].to_vec()));
    // And a different campaign seed moves the sites.
    let other = inject::plan_campaign(w.as_ref(), 12, 100);
    assert_ne!(json(&other.sites), json(&a.sites));
}

#[test]
fn branch_sweep_is_identical_across_job_counts() {
    let names = ["nn", "bfs (UT)", "gaussian"].map(String::from);
    let study =
        |w: &dyn sassi_workloads::Workload, inner: usize| branch::run_with_jobs(w, inner).row;
    let (serial, _) = campaigns::per_workload(1, "test-branch", &names, study);
    let (parallel, _) = campaigns::per_workload(4, "test-branch", &names, study);
    // jobs=8 over 3 units leaves a share of 2 for inner CTA workers,
    // exercising the split path as well.
    let (split, _) = campaigns::per_workload(8, "test-branch", &names, study);
    assert_eq!(json(&serial), json(&parallel));
    assert_eq!(json(&serial), json(&split));
    // Rows come back in set order, not completion order.
    let row_names: Vec<&str> = serial.iter().map(|r| r.name.as_str()).collect();
    assert_eq!(row_names, ["nn", "bfs (UT)", "gaussian"]);
}

#[test]
fn instrumented_smoke_matches_serial_under_env_jobs() {
    // The CI instrumented-smoke gate: one branch-study launch driven at
    // whatever `SASSI_JOBS` and `SASSI_BLOCK_STEP` the matrix leg sets
    // (jobs 1/4 × block-step 0/1 in CI), with the serialized study
    // output asserted byte-identical to the pinned single-step serial
    // run. Locally, with the env unset, this still exercises the
    // machine's available parallelism and the default block-stepped
    // scheduler against that baseline.
    let jobs = sassi_bench::exec::default_jobs();
    let w = by_name("nn").expect("workload");
    let serial = branch::run_with_config(w.as_ref(), 1, Some(false));
    let under_env = branch::run_with_jobs(w.as_ref(), jobs);
    assert!(
        serial.row.dynamic_total > 0,
        "smoke launch must execute branches"
    );
    assert_eq!(
        json(&serial.row),
        json(&under_env.row),
        "branch study output diverges between the pinned serial single-step \
         run and cta_jobs={jobs} under the environment's block-step setting"
    );
}

#[test]
fn branch_study_is_identical_across_block_step_and_jobs() {
    // The full four-cell matrix in one process: the branch study's
    // serialized row must be byte-identical across
    // `cta_jobs` ∈ {1, 4} × `block_step` ∈ {off, on} — scheduling
    // (parallelism and block batching) must never leak into
    // instruction-derived study output.
    let w = by_name("nn").expect("workload");
    let baseline = json(&branch::run_with_config(w.as_ref(), 1, Some(false)).row);
    for (jobs, block_step) in [(1, true), (4, false), (4, true)] {
        assert_eq!(
            baseline,
            json(&branch::run_with_config(w.as_ref(), jobs, Some(block_step)).row),
            "branch study diverges at cta_jobs={jobs}, block_step={block_step}"
        );
    }
}

#[test]
fn instrumented_studies_are_identical_across_inner_job_counts() {
    // The tentpole guarantee at the study level: running the CTA shards
    // of every launch on 4 workers must leave each handler's merged
    // state — and therefore the serialized study row — byte-identical
    // to the serial run, for all three instrumentation case studies.
    for name in ["nn", "bfs (UT)", "hotspot"] {
        let w = by_name(name).expect("workload");
        assert_eq!(
            json(&branch::run_with_jobs(w.as_ref(), 1).row),
            json(&branch::run_with_jobs(w.as_ref(), 4).row),
            "branch study diverges on {name}"
        );
        let m1 = memdiv::run_with_jobs(w.as_ref(), 1);
        let m4 = memdiv::run_with_jobs(w.as_ref(), 4);
        assert_eq!(
            json(&(&m1.pmf, &m1.fully_diverged, &m1.matrix)),
            json(&(&m4.pmf, &m4.fully_diverged, &m4.matrix)),
            "memdiv study diverges on {name}"
        );
        assert_eq!(
            json(&value::run_with_jobs(w.as_ref(), 1)),
            json(&value::run_with_jobs(w.as_ref(), 4)),
            "value study diverges on {name}"
        );
    }
}
