//! `repro` — regenerates every table and figure of the paper.

use sassi_bench::save_json;
use sassi_studies::{branch, inject, memdiv, overhead, report, value};
use sassi_workloads::{by_name, fig10_set, fig7_set, table1_set, table2_set, table3_set};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = args.first().map(String::as_str).unwrap_or("all");
    match cmd {
        "table1" => table1(),
        "fig5" => fig5(),
        "fig7" => fig7(),
        "fig8" => fig8(),
        "table2" => table2(),
        "table3" => table3(),
        "fig10" => {
            let runs = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(150);
            fig10(runs);
        }
        "ablation-stub" => ablation_stub(),
        "ablation-spill" => ablation_spill(),
        "all" => {
            table1();
            fig5();
            fig7();
            fig8();
            table2();
            table3();
            fig10(150);
            ablation_stub();
            ablation_spill();
        }
        other => {
            eprintln!("unknown experiment `{other}`");
            eprintln!("usage: repro [table1|fig5|fig7|fig8|table2|table3|fig10 [runs]|ablation-stub|ablation-spill|all]");
            std::process::exit(2);
        }
    }
}

fn table1() {
    let mut rows = Vec::new();
    for w in table1_set() {
        eprintln!("[table1] {}", w.name());
        rows.push(branch::run(w.as_ref()));
    }
    println!("{}", report::table1(&rows));
    save_json(
        "table1",
        &rows.iter().map(|r| r.row.clone()).collect::<Vec<_>>(),
    );
}

fn fig5() {
    for name in ["bfs (1M)", "bfs (UT)"] {
        eprintln!("[fig5] {name}");
        let study = branch::run(by_name(name).unwrap().as_ref());
        println!("{}", report::figure5(&study, 12));
        save_json(
            &format!("fig5_{}", name.replace(['(', ')', ' '], "")),
            &study.per_branch,
        );
    }
}

fn fig7() {
    let mut studies = Vec::new();
    for w in fig7_set() {
        eprintln!("[fig7] {}", w.name());
        studies.push(memdiv::run(w.as_ref()));
    }
    println!("{}", report::figure7(&studies));
    save_json(
        "fig7",
        &studies
            .iter()
            .map(|s| (s.name.clone(), s.pmf.clone(), s.fully_diverged))
            .collect::<Vec<_>>(),
    );
}

fn fig8() {
    for name in ["miniFE (CSR)", "miniFE (ELL)"] {
        eprintln!("[fig8] {name}");
        let study = memdiv::run(by_name(name).unwrap().as_ref());
        println!("{}", report::figure8(&study));
        save_json(
            &format!("fig8_{}", name.replace(['(', ')', ' '], "")),
            &study.matrix,
        );
    }
}

fn table2() {
    let mut rows = Vec::new();
    for w in table2_set() {
        eprintln!("[table2] {}", w.name());
        rows.push(value::run(w.as_ref()));
    }
    println!("{}", report::table2(&rows));
    save_json("table2", &rows);
}

fn table3() {
    let mut rows = Vec::new();
    for w in table3_set() {
        eprintln!("[table3] {}", w.name());
        rows.push(overhead::run(w.as_ref()));
    }
    println!("{}", report::table3(&rows));
    save_json("table3", &rows);
}

fn fig10(runs: usize) {
    let mut campaigns = Vec::new();
    for w in fig10_set() {
        eprintln!("[fig10] {} ({runs} injections)", w.name());
        campaigns.push(inject::run_campaign(w.as_ref(), runs, 0xC0FFEE));
    }
    println!("{}", report::figure10(&campaigns));
    save_json("fig10", &campaigns);
}

fn ablation_stub() {
    println!("Stub-handler ablation (§9.1): kernel slowdown with full vs empty handler");
    let mut rows = Vec::new();
    for name in ["nn", "sad", "kmeans", "stencil", "spmv (small)"] {
        let w = by_name(name).unwrap();
        let row = overhead::run(w.as_ref());
        println!(
            "  {:<14} value-profiling {:>6.1}x | stub {:>6.1}x | stub fraction {:.0}%",
            row.name,
            row.slowdowns[2].kernel,
            row.stub.kernel,
            100.0 * row.stub_fraction
        );
        rows.push(row);
    }
    let mean = rows.iter().map(|r| r.stub_fraction).sum::<f64>() / rows.len() as f64;
    println!(
        "  mean stub fraction: {:.0}% (paper reports ~80%)",
        100.0 * mean
    );
    save_json("ablation_stub", &rows);
}

fn ablation_spill() {
    println!("Liveness ablation: liveness-driven minimal saves vs save-everything (binary-rewriter baseline)");
    println!(
        "{:<16} {:>14} {:>16} {:>12} {:>10}",
        "benchmark", "avg saves/site", "save-all (=15)", "liveness K", "save-all K"
    );
    for name in [
        "nn",
        "sgemm (small)",
        "bfs (1M)",
        "heartwall",
        "miniFE (CSR)",
    ] {
        let w = by_name(name).unwrap();
        let (live, all) = overhead::spill_ablation(w.as_ref());
        let (k_live, k_all) = overhead::run_spill_policy_ablation(w.as_ref());
        println!(
            "{:<16} {:>14.1} {:>16.0} {:>11.1}x {:>9.1}x",
            w.name(),
            live,
            all,
            k_live,
            k_all
        );
    }
}
