//! `repro` — regenerates every table and figure of the paper.
//!
//! Every sweep runs on the deterministic parallel campaign engine
//! (`sassi_bench::exec`): results are byte-identical for any `--jobs`
//! value, including 1.

use sassi_bench::exec::{default_jobs, Timing};
use sassi_bench::{campaigns, hotloop as hotloop_cmp, save_json};
use sassi_studies::report;

const USAGE: &str = "usage: repro [--jobs N] [table1|fig5|fig7|fig8|table2|table3|fig10 [runs]|ablation-stub|ablation-spill|hotloop|all]
  --jobs N     worker threads per sweep (default: SASSI_JOBS or available parallelism)
  fig10 runs   injections per workload (positive integer, default 150)
  hotloop      decoded (serial + CTA-parallel) vs reference comparison -> results/timings/sim_hot_loop.json";

fn usage_exit(msg: &str) -> ! {
    eprintln!("repro: {msg}");
    eprintln!("{USAGE}");
    std::process::exit(2);
}

struct Cli {
    cmd: String,
    /// Positional arguments after the subcommand.
    rest: Vec<String>,
    jobs: usize,
}

fn parse_cli() -> Cli {
    let mut jobs: Option<usize> = None;
    let mut positional: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let jobs_value = if a == "--jobs" || a == "-j" {
            Some(
                args.next()
                    .unwrap_or_else(|| usage_exit(&format!("`{a}` needs a value"))),
            )
        } else {
            a.strip_prefix("--jobs=").map(str::to_owned)
        };
        if let Some(v) = jobs_value {
            match v.parse::<usize>() {
                Ok(n) if n > 0 => jobs = Some(n),
                _ => usage_exit(&format!(
                    "invalid job count `{v}` (want a positive integer)"
                )),
            }
        } else if a.starts_with('-') {
            usage_exit(&format!("unknown option `{a}`"));
        } else {
            positional.push(a);
        }
    }
    let cmd = positional
        .first()
        .cloned()
        .unwrap_or_else(|| String::from("all"));
    let rest = positional.get(1..).unwrap_or_default().to_vec();
    Cli {
        cmd,
        rest,
        jobs: jobs.unwrap_or_else(default_jobs),
    }
}

/// Rejects trailing positional arguments for subcommands that take none.
fn no_args(cli: &Cli) {
    if let Some(extra) = cli.rest.first() {
        usage_exit(&format!("`{}` takes no arguments (got `{extra}`)", cli.cmd));
    }
}

fn fig10_runs(cli: &Cli) -> usize {
    if let Some(extra) = cli.rest.get(1) {
        usage_exit(&format!(
            "`fig10` takes at most one argument (got `{extra}`)"
        ));
    }
    match cli.rest.first() {
        None => 150,
        Some(s) => match s.parse::<usize>() {
            Ok(n) if n > 0 => n,
            _ => usage_exit(&format!(
                "invalid run count `{s}` (want a positive integer)"
            )),
        },
    }
}

/// Prints the sweep's throughput line and records it under
/// `results/timings/` (kept out of `results/*.json` so the main
/// artifacts stay byte-identical across `--jobs` settings).
fn report_timing(name: &str, timing: &Timing) {
    println!("{}", timing.summary(name));
    save_json(&format!("timings/{name}"), timing);
}

fn main() {
    let cli = parse_cli();
    match cli.cmd.as_str() {
        "table1" => {
            no_args(&cli);
            table1(cli.jobs);
        }
        "fig5" => {
            no_args(&cli);
            fig5(cli.jobs);
        }
        "fig7" => {
            no_args(&cli);
            fig7(cli.jobs);
        }
        "fig8" => {
            no_args(&cli);
            fig8(cli.jobs);
        }
        "table2" => {
            no_args(&cli);
            table2(cli.jobs);
        }
        "table3" => {
            no_args(&cli);
            table3(cli.jobs);
        }
        "fig10" => {
            let runs = fig10_runs(&cli);
            fig10(runs, cli.jobs);
        }
        "ablation-stub" => {
            no_args(&cli);
            ablation_stub(cli.jobs);
        }
        "ablation-spill" => {
            no_args(&cli);
            ablation_spill(cli.jobs);
        }
        "hotloop" => {
            no_args(&cli);
            hotloop(cli.jobs);
        }
        "all" => {
            no_args(&cli);
            table1(cli.jobs);
            fig5(cli.jobs);
            fig7(cli.jobs);
            fig8(cli.jobs);
            table2(cli.jobs);
            table3(cli.jobs);
            fig10(150, cli.jobs);
            ablation_stub(cli.jobs);
            ablation_spill(cli.jobs);
        }
        other => usage_exit(&format!("unknown experiment `{other}`")),
    }
}

fn table1(jobs: usize) {
    let (rows, timing) = campaigns::table1(jobs);
    println!("{}", report::table1(&rows));
    save_json(
        "table1",
        &rows.iter().map(|r| r.row.clone()).collect::<Vec<_>>(),
    );
    report_timing("table1", &timing);
}

fn fig5(jobs: usize) {
    let (studies, timing) = campaigns::fig5(jobs);
    for study in &studies {
        println!("{}", report::figure5(study, 12));
        save_json(
            &format!("fig5_{}", study.row.name.replace(['(', ')', ' '], "")),
            &study.per_branch,
        );
    }
    report_timing("fig5", &timing);
}

fn fig7(jobs: usize) {
    let (studies, timing) = campaigns::fig7(jobs);
    println!("{}", report::figure7(&studies));
    save_json(
        "fig7",
        &studies
            .iter()
            .map(|s| (s.name.clone(), s.pmf.clone(), s.fully_diverged))
            .collect::<Vec<_>>(),
    );
    report_timing("fig7", &timing);
}

fn fig8(jobs: usize) {
    let (studies, timing) = campaigns::fig8(jobs);
    for study in &studies {
        println!("{}", report::figure8(study));
        save_json(
            &format!("fig8_{}", study.name.replace(['(', ')', ' '], "")),
            &study.matrix,
        );
    }
    report_timing("fig8", &timing);
}

fn table2(jobs: usize) {
    let (rows, timing) = campaigns::table2(jobs);
    println!("{}", report::table2(&rows));
    save_json("table2", &rows);
    report_timing("table2", &timing);
}

fn table3(jobs: usize) {
    let (rows, timing) = campaigns::table3(jobs);
    println!("{}", report::table3(&rows));
    save_json("table3", &rows);
    report_timing("table3", &timing);
}

fn fig10(runs: usize, jobs: usize) {
    let (campaigns, timing) = campaigns::fig10(runs, campaigns::FIG10_SEED, jobs);
    println!("{}", report::figure10(&campaigns));
    save_json("fig10", &campaigns);
    report_timing("fig10", &timing);
}

fn ablation_stub(jobs: usize) {
    let (rows, timing) = campaigns::ablation_stub(jobs);
    println!("Stub-handler ablation (§9.1): kernel slowdown with full vs empty handler");
    for row in &rows {
        println!(
            "  {:<14} value-profiling {:>6.1}x | stub {:>6.1}x | stub fraction {:.0}%",
            row.name,
            row.slowdowns[2].kernel,
            row.stub.kernel,
            100.0 * row.stub_fraction
        );
    }
    let mean = rows.iter().map(|r| r.stub_fraction).sum::<f64>() / rows.len() as f64;
    println!(
        "  mean stub fraction: {:.0}% (paper reports ~80%)",
        100.0 * mean
    );
    save_json("ablation_stub", &rows);
    report_timing("ablation-stub", &timing);
}

fn hotloop(jobs: usize) {
    // Not part of `all`: it deliberately re-runs workloads on the slow
    // reference interpreter, and `all`'s wall time is itself a tracked
    // perf artifact.
    let report = hotloop_cmp::compare(jobs);
    println!("Hot-loop comparison: pre-decoded µop interpreter vs reference (seed) semantics");
    println!(
        "  workloads: {} | jobs={} | {} warp instrs ({} thread instrs)",
        report.workloads.join(", "),
        report.jobs,
        report.decoded.warp_instrs,
        report.decoded.thread_instrs
    );
    for (label, run) in [
        ("decoded", &report.decoded),
        ("single-step", &report.single_step),
        ("parallel", &report.parallel),
        ("reference", &report.reference),
        ("instrumented", &report.instrumented),
    ] {
        println!(
            "  {label:<12} {:>7.2} s busy ({:>6.2} s wall) — {:.0} warp instrs/s",
            run.busy_s, run.wall_s, run.instrs_per_s
        );
    }
    println!("  speedup: {:.2}x (busy-time ratio)", report.speedup);
    println!(
        "  block speedup: {:.2}x (single-step wall / block-stepped wall)",
        report.block_speedup
    );
    println!(
        "  parallel speedup: {:.2}x (decoded serial wall / CTA-parallel wall, {} shard workers)",
        report.parallel_speedup, report.jobs
    );
    println!(
        "  instrumented overhead: {:.2}x wall vs native decoded (branch study, {} handler calls)",
        report.instrumented_overhead, report.handler_calls
    );
    let i = &report.issue;
    let total = (i.memory + i.control + i.numeric + i.misc).max(1);
    println!(
        "  issue classes: memory {:.0}% | control {:.0}% | numeric {:.0}% | misc {:.0}%",
        100.0 * i.memory as f64 / total as f64,
        100.0 * i.control as f64 / total as f64,
        100.0 * i.numeric as f64 / total as f64,
        100.0 * i.misc as f64 / total as f64
    );
    save_json("timings/sim_hot_loop", &report);
}

fn ablation_spill(jobs: usize) {
    let (rows, timing) = campaigns::ablation_spill(jobs);
    println!("Liveness ablation: liveness-driven minimal saves vs save-everything (binary-rewriter baseline)");
    println!(
        "{:<16} {:>14} {:>16} {:>12} {:>10}",
        "benchmark", "avg saves/site", "save-all (=15)", "liveness K", "save-all K"
    );
    for row in &rows {
        println!(
            "{:<16} {:>14.1} {:>16.0} {:>11.1}x {:>9.1}x",
            row.name, row.live_saves, row.all_saves, row.k_live, row.k_all
        );
    }
    report_timing("ablation-spill", &timing);
}
