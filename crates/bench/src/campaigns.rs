//! Sweep definitions, all routed through the parallel engine in
//! [`crate::exec`].
//!
//! Each sweep names its work units up front (one per workload; one per
//! *injection* for Figure 10), fans them across the worker pool, and
//! merges results in canonical order. The `repro` binary and the
//! determinism tests both call these functions, so "what the CLI does"
//! and "what the tests assert" cannot drift apart.

use crate::exec::{run_units, split_jobs, Timing, WorkloadCache};
use sassi_studies::inject::{self, InjectionCampaign, InjectionSite};
use sassi_studies::{branch, memdiv, overhead, value};
use sassi_workloads::{fig10_set, fig7_set, table1_set, table2_set, table3_set, Workload};

/// The campaign seed every `repro fig10` run uses.
pub const FIG10_SEED: u64 = 0xC0FFEE;

fn set_names(set: Vec<Box<dyn Workload>>) -> Vec<String> {
    set.iter().map(|w| w.name()).collect()
}

/// Fans one study function across a workload set, one unit per
/// workload, returning rows in set order.
///
/// The `jobs` budget is split by [`split_jobs`]: outer workers claim
/// whole workloads; any leftover budget is passed to the study as its
/// inner CTA-shard job count. Studies that cannot parallelize a launch
/// (stateful injection, closure handlers) simply ignore the second
/// argument.
pub fn per_workload<R: Send>(
    jobs: usize,
    label: &str,
    names: &[String],
    study: impl Fn(&dyn Workload, usize) -> R + Sync,
) -> (Vec<R>, Timing) {
    let split = split_jobs(jobs, names.len());
    if split.degraded {
        eprintln!(
            "[{label}] jobs={jobs} over {} units: outer workers take the whole \
             budget, inner CTA jobs degraded to 1",
            names.len()
        );
    }
    run_units(
        split.outer,
        names,
        WorkloadCache::default,
        |cache, name: &String, _| {
            eprintln!("[{label}] {name}");
            study(cache.get(name), split.inner)
        },
    )
}

/// Table 1: branch-divergence statistics.
pub fn table1(jobs: usize) -> (Vec<branch::BranchStudy>, Timing) {
    per_workload(jobs, "table1", &set_names(table1_set()), |w, inner| {
        branch::run_with_jobs(w, inner)
    })
}

/// Figure 5: per-branch profiles for bfs 1M vs UT.
pub fn fig5(jobs: usize) -> (Vec<branch::BranchStudy>, Timing) {
    let names = ["bfs (1M)", "bfs (UT)"].map(String::from);
    per_workload(jobs, "fig5", &names, |w, inner| {
        branch::run_with_jobs(w, inner)
    })
}

/// Figure 7: memory-divergence PMFs.
pub fn fig7(jobs: usize) -> (Vec<memdiv::MemDivStudy>, Timing) {
    per_workload(jobs, "fig7", &set_names(fig7_set()), |w, inner| {
        memdiv::run_with_jobs(w, inner)
    })
}

/// Figure 8: miniFE CSR vs ELL access matrices.
pub fn fig8(jobs: usize) -> (Vec<memdiv::MemDivStudy>, Timing) {
    let names = ["miniFE (CSR)", "miniFE (ELL)"].map(String::from);
    per_workload(jobs, "fig8", &names, |w, inner| {
        memdiv::run_with_jobs(w, inner)
    })
}

/// Table 2: value profiling.
pub fn table2(jobs: usize) -> (Vec<value::ValueRow>, Timing) {
    per_workload(jobs, "table2", &set_names(table2_set()), |w, inner| {
        value::run_with_jobs(w, inner)
    })
}

/// Table 3: instrumentation overheads. The overhead study times
/// serial launches (its slowdown model assumes one SM worker), so it
/// ignores the inner job share.
pub fn table3(jobs: usize) -> (Vec<overhead::OverheadRow>, Timing) {
    per_workload(jobs, "table3", &set_names(table3_set()), |w, _inner| {
        overhead::run(w)
    })
}

/// Figure 10: error-injection campaigns over `names`, `runs`
/// injections per workload.
///
/// Two engine passes: first one unit per workload (profile + site
/// selection, each site's seed a pure function of campaign seed,
/// workload and site index), then one unit per *injection*. Outcomes
/// are tallied back per workload in site order, so the merged
/// campaigns are bit-identical to a serial run regardless of `jobs`.
pub fn fig10_named(
    names: &[String],
    runs: usize,
    seed: u64,
    jobs: usize,
) -> (Vec<InjectionCampaign>, Timing) {
    let (plans, mut timing) = run_units(
        jobs,
        names,
        WorkloadCache::default,
        |cache, name: &String, _| {
            eprintln!("[fig10] {name} ({runs} injections)");
            inject::plan_campaign(cache.get(name), runs, seed)
        },
    );

    // One unit per injection: (workload index, site).
    let units: Vec<(usize, InjectionSite)> = plans
        .iter()
        .enumerate()
        .flat_map(|(wi, p)| p.sites.iter().map(move |&s| (wi, s)))
        .collect();
    let (outcomes, inject_timing) = run_units(
        jobs,
        &units,
        WorkloadCache::default,
        |cache, &(wi, site), _| inject::run_one(cache.get(&names[wi]), site, plans[wi].watchdog),
    );
    timing.merge(&inject_timing);

    // Units were flattened in workload order, so outcomes regroup by
    // contiguous runs of the same workload index.
    let mut campaigns = Vec::with_capacity(names.len());
    let mut cursor = 0;
    for (wi, plan) in plans.iter().enumerate() {
        let n = plan.sites.len();
        campaigns.push(inject::tally(
            names[wi].clone(),
            &outcomes[cursor..cursor + n],
        ));
        cursor += n;
    }
    (campaigns, timing)
}

/// Figure 10 over the paper's benchmark set.
pub fn fig10(runs: usize, seed: u64, jobs: usize) -> (Vec<InjectionCampaign>, Timing) {
    let names = set_names(fig10_set());
    fig10_named(&names, runs, seed, jobs)
}

/// §9.1 stub-handler ablation rows.
pub fn ablation_stub(jobs: usize) -> (Vec<overhead::OverheadRow>, Timing) {
    let names = ["nn", "sad", "kmeans", "stencil", "spmv (small)"].map(String::from);
    per_workload(jobs, "ablation-stub", &names, |w, _inner| overhead::run(w))
}

/// One row of the liveness-ablation table.
#[derive(Clone, Debug)]
pub struct SpillRow {
    /// Workload display name.
    pub name: String,
    /// Average liveness-driven saves per site.
    pub live_saves: f64,
    /// Save-everything saves per site.
    pub all_saves: f64,
    /// Kernel slowdown with liveness-driven spills.
    pub k_live: f64,
    /// Kernel slowdown with save-everything spills.
    pub k_all: f64,
}

/// Liveness-driven vs save-everything spill ablation rows.
pub fn ablation_spill(jobs: usize) -> (Vec<SpillRow>, Timing) {
    let names = [
        "nn",
        "sgemm (small)",
        "bfs (1M)",
        "heartwall",
        "miniFE (CSR)",
    ]
    .map(String::from);
    per_workload(jobs, "ablation-spill", &names, |w, _inner| {
        let (live_saves, all_saves) = overhead::spill_ablation(w);
        let (k_live, k_all) = overhead::run_spill_policy_ablation(w);
        SpillRow {
            name: w.name(),
            live_saves,
            all_saves,
            k_live,
            k_all,
        }
    })
}
