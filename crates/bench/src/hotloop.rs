//! The hot-loop comparison behind `repro hotloop`: the same workload
//! set executed by the pre-decoded µop interpreter (serially and with
//! CTA-parallel launches) and by the reference (seed-semantics)
//! interpreter, with per-instruction-class issue counters from the
//! decoded run — the where-do-cycles-go artifact future perf PRs diff
//! against (`results/timings/sim_hot_loop.json`).

use crate::exec::{run_units, WorkloadCache};
use parking_lot::Mutex;
use sassi_rt::{ModuleBuilder, Runtime};
use sassi_sim::{ExecMode, IssueCounters, NoHandlers};
use serde::Serialize;
use std::sync::Arc;

/// The workloads the hot-loop comparison executes: convergent compute
/// (`sgemm`), divergent graph traversal (`bfs`), scattered memory
/// (`spmv`), shared-memory stencil (`hotspot`), SFU-heavy math
/// (`mri-q`) and an atomics/barrier mix (`streamcluster`).
pub const HOTLOOP_SET: &[&str] = &[
    "sgemm (medium)",
    "bfs (1M)",
    "spmv (large)",
    "hotspot",
    "mri-q",
    "streamcluster",
];

/// One interpreter configuration's side of the comparison.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct ModeRun {
    /// End-to-end wall-clock seconds for the sweep.
    pub wall_s: f64,
    /// Summed per-unit compute seconds (scheduling-independent).
    pub busy_s: f64,
    /// Warp-level instructions interpreted.
    pub warp_instrs: u64,
    /// Thread-level instructions interpreted.
    pub thread_instrs: u64,
    /// Warp instructions interpreted per busy second.
    pub instrs_per_s: f64,
}

/// The full artifact written to `results/timings/sim_hot_loop.json`.
#[derive(Clone, Debug, Serialize)]
pub struct HotLoopReport {
    /// Workload display names executed (once each, per configuration).
    pub workloads: Vec<String>,
    /// CTA-shard worker threads the parallel sweep ran with. Every
    /// sweep executes the workloads one at a time (no outer workers),
    /// so wall times compare like for like.
    pub jobs: usize,
    /// The pre-decoded µop interpreter, serial launches
    /// (`ExecMode::Decoded`), block-stepped scheduler (the default).
    pub decoded: ModeRun,
    /// The decoded interpreter with block stepping disabled
    /// (`SASSI_BLOCK_STEP=0` semantics): one µop per scheduler pick.
    /// Same instruction counts as `decoded`, asserted in-process.
    pub single_step: ModeRun,
    /// The pre-decoded µop interpreter with `jobs` CTA-shard workers
    /// per launch — the SM-worker execution model.
    pub parallel: ModeRun,
    /// The seed-semantics interpreter, serial launches
    /// (`ExecMode::Reference`).
    pub reference: ModeRun,
    /// The decoded interpreter running the same workloads under the
    /// paper's branch study (Case Study I): every conditional branch
    /// trampolines into the handler. Serial launches, so the wall time
    /// compares directly against `decoded`. The instruction counts
    /// include the trampoline SASS the instrumentor injected.
    pub instrumented: ModeRun,
    /// Warp-level handler invocations across the instrumented sweep.
    pub handler_calls: u64,
    /// instrumented wall time / decoded (native) wall time — the
    /// end-to-end slowdown of branch instrumentation, the analogue of
    /// the paper's Table 4 `cfg` row.
    pub instrumented_overhead: f64,
    /// reference busy time / decoded busy time (interpreter speedup).
    pub speedup: f64,
    /// single-step wall time / block-stepped wall time, measured in
    /// the same process on the same warmed state — the wall-clock win
    /// of running warps to their basic-block boundary per pick.
    pub block_speedup: f64,
    /// decoded serial wall time / parallel wall time: how much faster
    /// the same workloads finish when each launch's CTAs run across
    /// `jobs` workers instead of one. ~1.0 on a single-core host;
    /// approaches the populated shard count on a multicore host.
    pub parallel_speedup: f64,
    /// Per-instruction-class issue counts (identical across all three
    /// sweeps; taken from the decoded serial run).
    pub issue: IssueCounters,
}

/// Timed passes per sweep. Each configuration's sweep lasts only a few
/// hundred milliseconds, which on a busy single-core host is
/// noise-dominated; every sweep therefore runs `PASSES` times after its
/// warm-up and reports the fastest pass (best-of-N discards scheduler
/// preemption and cache-pollution outliers, which are strictly
/// additive). Instruction counts are asserted identical across passes.
const PASSES: usize = 3;

/// One untimed launch before a timed sweep. Sweeps used to run cold —
/// the first timed workload paid one-time process costs (lazy
/// allocator growth, page faults on freshly-mapped device heaps, lazy
/// statics), biasing whichever configuration ran first. Warming with a
/// real workload under the same configuration moves those costs out of
/// every timed window.
fn warmup(mode: ExecMode, cta_jobs: usize, block_step: bool) {
    let w = sassi_workloads::by_name("hotspot").expect("warm-up workload");
    let mut mb = ModuleBuilder::new();
    for k in w.kernels() {
        mb.add_kernel(k);
    }
    let module = mb.build(None).expect("build");
    let mut rt = Runtime::with_defaults();
    rt.device.exec_mode = mode;
    rt.set_cta_jobs(cta_jobs);
    rt.set_block_step(block_step);
    let out = w.execute(&mut rt, &module, &mut NoHandlers);
    assert!(out.is_ok(), "warm-up: {:?}", out.err());
}

fn sweep(
    mode: ExecMode,
    jobs: usize,
    cta_jobs: usize,
    block_step: bool,
) -> (ModeRun, IssueCounters) {
    warmup(mode, cta_jobs, block_step);
    let mut best: Option<(ModeRun, IssueCounters)> = None;
    for _ in 0..PASSES {
        let pass = sweep_pass(mode, jobs, cta_jobs, block_step);
        match &best {
            Some((b, bi)) => {
                assert_eq!(b.warp_instrs, pass.0.warp_instrs);
                assert_eq!(*bi, pass.1, "issue counters diverge across passes");
                if pass.0.wall_s < b.wall_s {
                    best = Some(pass);
                }
            }
            None => best = Some(pass),
        }
    }
    best.expect("at least one pass")
}

fn sweep_pass(
    mode: ExecMode,
    jobs: usize,
    cta_jobs: usize,
    block_step: bool,
) -> (ModeRun, IssueCounters) {
    let (per_unit, timing) = run_units(
        jobs,
        HOTLOOP_SET,
        WorkloadCache::default,
        |cache, name, _| {
            let w = cache.get(name);
            let mut mb = ModuleBuilder::new();
            for k in w.kernels() {
                mb.add_kernel(k);
            }
            let module = mb.build(None).expect("build");
            let mut rt = Runtime::with_defaults();
            rt.device.exec_mode = mode;
            rt.set_cta_jobs(cta_jobs);
            rt.set_block_step(block_step);
            let out = w.execute(&mut rt, &module, &mut NoHandlers);
            assert!(out.is_ok(), "{name}: {:?}", out.err());
            let mut issue = IssueCounters::default();
            let (mut wi, mut ti) = (0u64, 0u64);
            for r in rt.records() {
                wi += r.result.stats.warp_instrs;
                ti += r.result.stats.thread_instrs;
                issue.merge(&r.result.stats.issue);
            }
            (wi, ti, issue)
        },
    );
    let mut issue = IssueCounters::default();
    let (mut wi, mut ti) = (0u64, 0u64);
    for (w, t, i) in &per_unit {
        wi += w;
        ti += t;
        issue.merge(i);
    }
    let run = ModeRun {
        wall_s: timing.wall_s,
        busy_s: timing.busy_s,
        warp_instrs: wi,
        thread_instrs: ti,
        instrs_per_s: if timing.busy_s > 0.0 {
            wi as f64 / timing.busy_s
        } else {
            0.0
        },
    };
    (run, issue)
}

/// The branch-study sweep: decoded interpreter, serial launches, every
/// conditional branch instrumented. Returns the run plus the total
/// warp-level handler invocations.
fn instrumented_sweep() -> (ModeRun, u64) {
    warmup(ExecMode::Decoded, 1, true);
    let mut best: Option<(ModeRun, u64)> = None;
    for _ in 0..PASSES {
        let pass = instrumented_pass();
        match &best {
            Some((b, bh)) => {
                assert_eq!(b.warp_instrs, pass.0.warp_instrs);
                assert_eq!(*bh, pass.1, "handler calls diverge across passes");
                if pass.0.wall_s < b.wall_s {
                    best = Some(pass);
                }
            }
            None => best = Some(pass),
        }
    }
    best.expect("at least one pass")
}

fn instrumented_pass() -> (ModeRun, u64) {
    let (per_unit, timing) = run_units(1, HOTLOOP_SET, WorkloadCache::default, |cache, name, _| {
        let w = cache.get(name);
        let state = Arc::new(Mutex::new(sassi_studies::branch::BranchState::default()));
        let mut sassi = sassi_studies::branch::instrumentor(state);
        let mut mb = ModuleBuilder::new();
        for k in w.kernels() {
            mb.add_kernel(k);
        }
        let module = mb.build(Some(&sassi)).expect("build");
        let mut rt = Runtime::with_defaults();
        rt.device.exec_mode = ExecMode::Decoded;
        rt.set_block_step(true);
        let out = w.execute(&mut rt, &module, &mut sassi);
        assert!(out.is_ok(), "{name}: {:?}", out.err());
        let (mut wi, mut ti, mut hc) = (0u64, 0u64, 0u64);
        for r in rt.records() {
            wi += r.result.stats.warp_instrs;
            ti += r.result.stats.thread_instrs;
            hc += r.result.stats.handler_calls;
        }
        (wi, ti, hc)
    });
    let (mut wi, mut ti, mut hc) = (0u64, 0u64, 0u64);
    for (w, t, h) in &per_unit {
        wi += w;
        ti += t;
        hc += h;
    }
    let run = ModeRun {
        wall_s: timing.wall_s,
        busy_s: timing.busy_s,
        warp_instrs: wi,
        thread_instrs: ti,
        instrs_per_s: if timing.busy_s > 0.0 {
            wi as f64 / timing.busy_s
        } else {
            0.0
        },
    };
    (run, hc)
}

/// Runs the comparison (decoded serial, decoded CTA-parallel, then
/// reference serial, then the branch-instrumented serial sweep) and
/// returns the report. Workloads always run one
/// at a time — `jobs` buys CTA-shard workers in the parallel sweep
/// only — so the sweeps' wall times are directly comparable instead of
/// confounded by outer-level scheduling. The issue-class breakdown and
/// instruction counts are asserted identical across all three sweeps —
/// a cheap online rerun of the decode-equivalence property that also
/// covers the parallel engine's stat merge.
pub fn compare(jobs: usize) -> HotLoopReport {
    let (decoded, issue_d) = sweep(ExecMode::Decoded, 1, 1, true);
    let (single_step, issue_s) = sweep(ExecMode::Decoded, 1, 1, false);
    let (parallel, issue_p) = sweep(ExecMode::Decoded, 1, jobs, true);
    let (reference, issue_r) = sweep(ExecMode::Reference, 1, 1, false);
    let (instrumented, handler_calls) = instrumented_sweep();
    assert!(handler_calls > 0, "branch sweep fired no handler calls");
    // Trampolines add instructions, so the instrumented sweep is only
    // sanity-checked for more work than native, not exact equality.
    assert!(instrumented.warp_instrs > decoded.warp_instrs);
    assert_eq!(
        issue_d, issue_s,
        "issue-class counters diverge between block-stepped and single-stepped runs"
    );
    assert_eq!(
        issue_d, issue_p,
        "issue-class counters diverge between serial and CTA-parallel runs"
    );
    assert_eq!(
        issue_d, issue_r,
        "issue-class counters diverge between interpreters"
    );
    assert_eq!(decoded.warp_instrs, single_step.warp_instrs);
    assert_eq!(decoded.thread_instrs, single_step.thread_instrs);
    assert_eq!(decoded.warp_instrs, parallel.warp_instrs);
    assert_eq!(decoded.thread_instrs, parallel.thread_instrs);
    assert_eq!(decoded.warp_instrs, reference.warp_instrs);
    assert_eq!(decoded.thread_instrs, reference.thread_instrs);
    HotLoopReport {
        workloads: HOTLOOP_SET.iter().map(|s| s.to_string()).collect(),
        jobs,
        speedup: if decoded.busy_s > 0.0 {
            reference.busy_s / decoded.busy_s
        } else {
            1.0
        },
        block_speedup: if decoded.wall_s > 0.0 {
            single_step.wall_s / decoded.wall_s
        } else {
            1.0
        },
        parallel_speedup: if parallel.wall_s > 0.0 {
            decoded.wall_s / parallel.wall_s
        } else {
            1.0
        },
        instrumented_overhead: if decoded.wall_s > 0.0 {
            instrumented.wall_s / decoded.wall_s
        } else {
            1.0
        },
        decoded,
        single_step,
        parallel,
        reference,
        instrumented,
        handler_calls,
        issue: issue_d,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hotloop_set_names_resolve() {
        for name in HOTLOOP_SET {
            assert!(
                sassi_workloads::by_name(name).is_some(),
                "unknown workload `{name}` in HOTLOOP_SET"
            );
        }
    }
}
