//! The hot-loop comparison behind `repro hotloop`: the same workload
//! set executed by the pre-decoded µop interpreter and by the reference
//! (seed-semantics) interpreter, with per-instruction-class issue
//! counters from the decoded run — the where-do-cycles-go artifact
//! future perf PRs diff against (`results/timings/sim_hot_loop.json`).

use crate::exec::{run_units, WorkloadCache};
use sassi_rt::{ModuleBuilder, Runtime};
use sassi_sim::{ExecMode, IssueCounters, NoHandlers};
use serde::Serialize;

/// The workloads the hot-loop comparison executes: convergent compute
/// (`sgemm`), divergent graph traversal (`bfs`), scattered memory
/// (`spmv`), shared-memory stencil (`hotspot`), SFU-heavy math
/// (`mri-q`) and an atomics/barrier mix (`streamcluster`).
pub const HOTLOOP_SET: &[&str] = &[
    "sgemm (medium)",
    "bfs (1M)",
    "spmv (large)",
    "hotspot",
    "mri-q",
    "streamcluster",
];

/// One interpreter's side of the comparison.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct ModeRun {
    /// End-to-end wall-clock seconds for the sweep.
    pub wall_s: f64,
    /// Summed per-unit compute seconds (scheduling-independent).
    pub busy_s: f64,
    /// Warp-level instructions interpreted.
    pub warp_instrs: u64,
    /// Thread-level instructions interpreted.
    pub thread_instrs: u64,
    /// Warp instructions interpreted per busy second.
    pub instrs_per_s: f64,
}

/// The full artifact written to `results/timings/sim_hot_loop.json`.
#[derive(Clone, Debug, Serialize)]
pub struct HotLoopReport {
    /// Workload display names executed (once each, per mode).
    pub workloads: Vec<String>,
    /// Worker threads used for each sweep.
    pub jobs: usize,
    /// The pre-decoded µop interpreter (`ExecMode::Decoded`).
    pub decoded: ModeRun,
    /// The seed-semantics interpreter (`ExecMode::Reference`).
    pub reference: ModeRun,
    /// reference busy time / decoded busy time.
    pub speedup: f64,
    /// Per-instruction-class issue counts (identical across modes;
    /// taken from the decoded run).
    pub issue: IssueCounters,
}

fn sweep(mode: ExecMode, jobs: usize) -> (ModeRun, IssueCounters) {
    let (per_unit, timing) = run_units(
        jobs,
        HOTLOOP_SET,
        WorkloadCache::default,
        |cache, name, _| {
            let w = cache.get(name);
            let mut mb = ModuleBuilder::new();
            for k in w.kernels() {
                mb.add_kernel(k);
            }
            let module = mb.build(None).expect("build");
            let mut rt = Runtime::with_defaults();
            rt.device.exec_mode = mode;
            let out = w.execute(&mut rt, &module, &mut NoHandlers);
            assert!(out.is_ok(), "{name}: {:?}", out.err());
            let mut issue = IssueCounters::default();
            let (mut wi, mut ti) = (0u64, 0u64);
            for r in rt.records() {
                wi += r.result.stats.warp_instrs;
                ti += r.result.stats.thread_instrs;
                let i = r.result.stats.issue;
                issue.memory += i.memory;
                issue.control += i.control;
                issue.numeric += i.numeric;
                issue.misc += i.misc;
            }
            (wi, ti, issue)
        },
    );
    let mut issue = IssueCounters::default();
    let (mut wi, mut ti) = (0u64, 0u64);
    for (w, t, i) in &per_unit {
        wi += w;
        ti += t;
        issue.memory += i.memory;
        issue.control += i.control;
        issue.numeric += i.numeric;
        issue.misc += i.misc;
    }
    let run = ModeRun {
        wall_s: timing.wall_s,
        busy_s: timing.busy_s,
        warp_instrs: wi,
        thread_instrs: ti,
        instrs_per_s: if timing.busy_s > 0.0 {
            wi as f64 / timing.busy_s
        } else {
            0.0
        },
    };
    (run, issue)
}

/// Runs the comparison (decoded first, then reference) and returns the
/// report. The issue-class breakdown is asserted identical across modes
/// — a cheap online rerun of the decode-equivalence property.
pub fn compare(jobs: usize) -> HotLoopReport {
    let (decoded, issue_d) = sweep(ExecMode::Decoded, jobs);
    let (reference, issue_r) = sweep(ExecMode::Reference, jobs);
    assert_eq!(
        issue_d, issue_r,
        "issue-class counters diverge between interpreters"
    );
    assert_eq!(decoded.warp_instrs, reference.warp_instrs);
    assert_eq!(decoded.thread_instrs, reference.thread_instrs);
    HotLoopReport {
        workloads: HOTLOOP_SET.iter().map(|s| s.to_string()).collect(),
        jobs,
        speedup: if decoded.busy_s > 0.0 {
            reference.busy_s / decoded.busy_s
        } else {
            1.0
        },
        decoded,
        reference,
        issue: issue_d,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hotloop_set_names_resolve() {
        for name in HOTLOOP_SET {
            assert!(
                sassi_workloads::by_name(name).is_some(),
                "unknown workload `{name}` in HOTLOOP_SET"
            );
        }
    }
}
