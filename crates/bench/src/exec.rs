//! The deterministic parallel campaign engine.
//!
//! Every `repro` sweep fans its independent work units (one per
//! workload, or one per injection for Figure 10) across a fixed-size
//! pool of worker threads. Determinism comes from the *plan/merge*
//! split, not from scheduling:
//!
//! 1. every unit is fully described before dispatch (workload name,
//!    injection site, per-site seed — never "the next draw of a shared
//!    RNG");
//! 2. workers claim units from an atomic counter in any order and
//!    write each result into the slot indexed by its unit;
//! 3. results are merged back in canonical (unit-index) order.
//!
//! Step 1 is why `--jobs 8` produces byte-identical `results/*.json`
//! to `--jobs 1`: no unit's inputs depend on which worker ran it or
//! when. Workers keep their own [`WorkloadCache`] so no simulator,
//! runtime or workload state is ever shared between threads.

use parking_lot::Mutex;
use sassi_workloads::{by_name, Workload};
use serde::Serialize;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Instant;

// The engine moves per-worker state and unit results across threads;
// these guarantees are what the `std::thread::scope` below relies on.
const _: () = {
    const fn assert_send<T: Send + ?Sized>() {}
    assert_send::<sassi::Sassi>();
    assert_send::<sassi_sim::Device>();
    assert_send::<sassi_rt::Runtime>();
    assert_send::<dyn Workload>();
};

/// Number of workers to use when the user gave no `--jobs`: the
/// `SASSI_JOBS` environment variable if set to a positive integer,
/// otherwise the machine's available parallelism.
pub fn default_jobs() -> usize {
    if let Ok(v) = std::env::var("SASSI_JOBS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
        eprintln!("warning: ignoring SASSI_JOBS=`{v}` (want a positive integer)");
    }
    std::thread::available_parallelism().map_or(1, usize::from)
}

/// How a `--jobs` budget splits between outer (per-unit) workers and
/// inner (per-CTA-shard) workers inside each unit's kernel launches.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub struct JobSplit {
    /// Worker threads claiming whole units.
    pub outer: usize,
    /// CTA-shard worker threads per launch inside each unit.
    pub inner: usize,
    /// Whether inner parallelism was degraded to 1 because the outer
    /// level already consumed the budget.
    pub degraded: bool,
}

/// Splits a job budget between outer units and inner CTA shards so the
/// two levels multiply to at most `jobs` instead of oversubscribing.
/// Outer workers win (unit-level parallelism has no merge overhead);
/// leftover budget goes to inner CTA workers. A pure function of
/// `(jobs, units)` — never of runtime load — so a sweep's split, and
/// therefore its schedule shape, is reproducible.
pub fn split_jobs(jobs: usize, units: usize) -> JobSplit {
    let jobs = jobs.max(1);
    let outer = jobs.min(units.max(1));
    let share = jobs / outer;
    let inner = if share >= 2 { share } else { 1 };
    JobSplit {
        outer,
        inner,
        degraded: share < 2 && jobs > outer,
    }
}

/// Wall-clock and throughput accounting for one sweep.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct Timing {
    /// Worker count the sweep ran with.
    pub jobs: usize,
    /// Work units completed.
    pub units: usize,
    /// End-to-end wall-clock seconds.
    pub wall_s: f64,
    /// Summed per-unit compute seconds across all workers.
    pub busy_s: f64,
}

impl Timing {
    /// Units completed per wall-clock second.
    pub fn units_per_s(&self) -> f64 {
        if self.wall_s > 0.0 {
            self.units as f64 / self.wall_s
        } else {
            0.0
        }
    }

    /// Estimated speedup over a 1-job run: total compute time divided
    /// by wall time. With one worker this is ~1.0 by construction; with
    /// N workers it approaches N when units are balanced.
    pub fn est_speedup(&self) -> f64 {
        if self.wall_s > 0.0 {
            self.busy_s / self.wall_s
        } else {
            1.0
        }
    }

    /// Folds another sweep phase into this accounting (phases run back
    /// to back, so wall times add).
    pub fn merge(&mut self, other: &Timing) {
        self.units += other.units;
        self.wall_s += other.wall_s;
        self.busy_s += other.busy_s;
    }

    /// The one-line summary printed at the end of each sweep.
    pub fn summary(&self, label: &str) -> String {
        format!(
            "[{label}] {} units in {:.2} s — {:.2} units/s, jobs={}, est. speedup {:.2}x vs 1 job",
            self.units,
            self.wall_s,
            self.units_per_s(),
            self.jobs,
            self.est_speedup()
        )
    }
}

/// Per-worker workload instantiation: each worker thread owns its own
/// workload objects (and therefore its own simulator/runtime state per
/// execution), keyed by display name.
#[derive(Default)]
pub struct WorkloadCache {
    cache: HashMap<String, Box<dyn Workload>>,
}

impl WorkloadCache {
    /// Returns this worker's instance of the named workload,
    /// constructing it on first use.
    pub fn get(&mut self, name: &str) -> &dyn Workload {
        let boxed = self.cache.entry(name.to_owned()).or_insert_with(|| {
            by_name(name).unwrap_or_else(|| panic!("unknown workload `{name}`"))
        });
        &**boxed
    }
}

/// Runs every unit through a pool of `jobs` workers and returns the
/// results in unit order, plus the sweep's [`Timing`].
///
/// `init` builds one worker-local state (e.g. a [`WorkloadCache`]) per
/// worker thread; `run` computes one unit. Results are slotted by unit
/// index, so the output order — and, given order-independent units,
/// the output bytes — do not depend on `jobs` or scheduling.
pub fn run_units<U, T, S, I, F>(jobs: usize, units: &[U], init: I, run: F) -> (Vec<T>, Timing)
where
    U: Sync,
    T: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, &U, usize) -> T + Sync,
{
    let jobs = jobs.max(1).min(units.len().max(1));
    let started = Instant::now();
    let busy_ns = AtomicU64::new(0);
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = units.iter().map(|_| Mutex::new(None)).collect();

    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| {
                let mut state = init();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= units.len() {
                        break;
                    }
                    let t = Instant::now();
                    let out = run(&mut state, &units[i], i);
                    busy_ns.fetch_add(t.elapsed().as_nanos() as u64, Ordering::Relaxed);
                    *slots[i].lock() = Some(out);
                }
            });
        }
    });

    let results = slots
        .into_iter()
        .map(|m| m.into_inner().expect("worker finished without a result"))
        .collect();
    let timing = Timing {
        jobs,
        units: units.len(),
        wall_s: started.elapsed().as_secs_f64(),
        busy_s: busy_ns.load(Ordering::Relaxed) as f64 / 1e9,
    };
    (results, timing)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_jobs_is_deterministic_and_never_oversubscribes() {
        // Budget fits the units: all outer, no inner.
        assert_eq!(
            split_jobs(4, 8),
            JobSplit {
                outer: 4,
                inner: 1,
                degraded: false
            }
        );
        // Budget exceeds units but not 2x: inner degraded to 1.
        assert_eq!(
            split_jobs(4, 3),
            JobSplit {
                outer: 3,
                inner: 1,
                degraded: true
            }
        );
        // Budget at least doubles the units: leftover goes inner.
        assert_eq!(
            split_jobs(8, 3),
            JobSplit {
                outer: 3,
                inner: 2,
                degraded: false
            }
        );
        // Single unit: everything goes inner.
        assert_eq!(
            split_jobs(4, 1),
            JobSplit {
                outer: 1,
                inner: 4,
                degraded: false
            }
        );
        // Degenerate inputs clamp instead of panicking.
        assert_eq!(
            split_jobs(0, 0),
            JobSplit {
                outer: 1,
                inner: 1,
                degraded: false
            }
        );
        // Never oversubscribed: outer * inner <= jobs for any inputs.
        for jobs in 1..=32 {
            for units in 0..=16 {
                let s = split_jobs(jobs, units);
                assert!(s.outer * s.inner <= jobs, "jobs={jobs} units={units}");
                assert!(s.outer >= 1 && s.inner >= 1);
            }
        }
    }

    #[test]
    fn results_come_back_in_unit_order() {
        let units: Vec<usize> = (0..64).collect();
        let (out, timing) = run_units(
            4,
            &units,
            || (),
            |(), &u, i| {
                assert_eq!(u, i);
                u * 10
            },
        );
        assert_eq!(out, (0..64).map(|u| u * 10).collect::<Vec<_>>());
        assert_eq!(timing.units, 64);
        assert_eq!(timing.jobs, 4);
    }

    #[test]
    fn jobs_is_clamped_to_unit_count() {
        let (out, timing) = run_units(16, &[1u32, 2], || (), |(), &u, _| u);
        assert_eq!(out, vec![1, 2]);
        assert_eq!(timing.jobs, 2);
    }

    #[test]
    fn empty_unit_list_is_fine() {
        let (out, timing) = run_units(4, &Vec::<u32>::new(), || (), |(), &u, _| u);
        assert!(out.is_empty());
        assert_eq!(timing.units, 0);
    }

    #[test]
    fn worker_state_is_per_thread() {
        // Each worker counts the units it ran; totals must cover all
        // units exactly once even though workers race to claim them.
        let units: Vec<usize> = (0..100).collect();
        let (out, _) = run_units(
            3,
            &units,
            || 0usize,
            |count, &u, _| {
                *count += 1;
                u
            },
        );
        assert_eq!(out, units);
    }
}
