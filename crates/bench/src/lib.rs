//! # sassi-bench — experiment regeneration
//!
//! The [`repro`](../repro/index.html) binary drives every experiment of
//! the paper's evaluation:
//!
//! ```text
//! repro table1          # branch divergence (Table 1)
//! repro fig5            # per-branch profiles, bfs 1M vs UT (Figure 5)
//! repro fig7            # memory-divergence PMFs (Figure 7)
//! repro fig8            # miniFE CSR vs ELL matrices (Figure 8)
//! repro table2          # value profiling (Table 2)
//! repro fig10 [runs]    # error injection (Figure 10), default 150 runs/app
//! repro table3          # instrumentation overheads (Table 3)
//! repro ablation-stub   # §9.1 stub-handler ablation
//! repro ablation-spill  # liveness-driven vs save-everything spills
//! repro hotloop         # decoded-vs-reference interpreter comparison
//! repro all             # everything above
//! ```
//!
//! Results print as ASCII tables/figures and are also written as JSON
//! under `results/` for EXPERIMENTS.md bookkeeping.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod campaigns;
pub mod exec;
pub mod hotloop;

use serde::Serialize;
use std::path::Path;

/// Writes a JSON artifact under `results/`. `name` may contain `/` to
/// target a subdirectory (e.g. `timings/table1`).
pub fn save_json<T: Serialize>(name: &str, value: &T) {
    let path = Path::new("results").join(format!("{name}.json"));
    let created = path
        .parent()
        .is_none_or(|p| std::fs::create_dir_all(p).is_ok());
    if created {
        if let Ok(s) = serde_json::to_string_pretty(value) {
            let _ = std::fs::write(path, s);
        }
    }
}
