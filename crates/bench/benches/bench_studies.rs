//! Criterion benchmark: one representative workload through each case
//! study — the regeneration cost of each table/figure row.

use criterion::{criterion_group, criterion_main, Criterion};
use sassi_studies::{branch, inject, memdiv, value};
use sassi_workloads::by_name;

fn bench_studies(c: &mut Criterion) {
    let mut g = c.benchmark_group("studies");
    g.sample_size(10);

    g.bench_function("table1_row/sgemm_small", |b| {
        b.iter(|| branch::run(by_name("sgemm (small)").unwrap().as_ref()))
    });
    g.bench_function("fig7_row/spmv_small", |b| {
        b.iter(|| memdiv::run(by_name("spmv (small)").unwrap().as_ref()))
    });
    g.bench_function("table2_row/nn", |b| {
        b.iter(|| value::run(by_name("nn").unwrap().as_ref()))
    });
    g.bench_function("fig10_injection/nn_x5", |b| {
        b.iter(|| inject::run_campaign(by_name("nn").unwrap().as_ref(), 5, 7))
    });
    g.finish();
}

criterion_group!(benches, bench_studies);
criterion_main!(benches);
