//! Criterion benchmark: end-to-end cost of running an instrumented
//! kernel relative to its baseline — the per-configuration slope behind
//! Table 3.

use criterion::{criterion_group, criterion_main, Criterion};
use sassi::{FnHandler, InfoFlags, Sassi, SiteFilter};
use sassi_workloads::{by_name, execute};

fn bench_instrumentation(c: &mut Criterion) {
    let w = by_name("nn").unwrap();
    let mut g = c.benchmark_group("instrumentation");
    g.sample_size(10);

    g.bench_function("baseline", |bench| {
        bench.iter(|| {
            let rep = execute(w.as_ref(), None, None);
            assert!(rep.output.is_ok());
            rep.kernel_cycles
        })
    });

    let configs: [(&str, SiteFilter, InfoFlags); 3] = [
        (
            "before_branches",
            SiteFilter::COND_BRANCHES,
            InfoFlags::COND_BRANCH,
        ),
        ("before_memory", SiteFilter::MEMORY, InfoFlags::MEMORY),
        ("before_all", SiteFilter::ALL, InfoFlags::NONE),
    ];
    for (label, filter, what) in configs {
        g.bench_function(label, |bench| {
            bench.iter(|| {
                let mut sassi = Sassi::new();
                sassi.on_before(filter, what, Box::new(FnHandler::free(|_| {})));
                let rep = execute(w.as_ref(), Some(&mut sassi), None);
                assert!(rep.output.is_ok());
                rep.kernel_cycles
            })
        });
    }
    g.bench_function("after_reg_writes", |bench| {
        bench.iter(|| {
            let mut sassi = Sassi::new();
            sassi.on_after(
                SiteFilter::REG_WRITES,
                InfoFlags::REGISTERS,
                Box::new(FnHandler::free(|_| {})),
            );
            let rep = execute(w.as_ref(), Some(&mut sassi), None);
            assert!(rep.output.is_ok());
            rep.kernel_cycles
        })
    });
    g.finish();
}

criterion_group!(benches, bench_instrumentation);
criterion_main!(benches);
