//! Criterion benchmark: end-to-end cost of running an instrumented
//! kernel relative to its baseline — the per-configuration slope behind
//! Table 3 — plus steady-state trap dispatch across the four parameter
//! combinations.

use criterion::{criterion_group, criterion_main, Criterion};
use sassi::{FnHandler, InfoFlags, Sassi, SiteCtx, SiteFilter};
use sassi_kir::{Compiler, KernelBuilder};
use sassi_sim::{Device, LaunchDims, Module};
use sassi_workloads::{by_name, execute};

fn bench_instrumentation(c: &mut Criterion) {
    let w = by_name("nn").unwrap();
    let mut g = c.benchmark_group("instrumentation");
    g.sample_size(10);

    g.bench_function("baseline", |bench| {
        bench.iter(|| {
            let rep = execute(w.as_ref(), None, None);
            assert!(rep.output.is_ok());
            rep.kernel_cycles
        })
    });

    let configs: [(&str, SiteFilter, InfoFlags); 3] = [
        (
            "before_branches",
            SiteFilter::COND_BRANCHES,
            InfoFlags::COND_BRANCH,
        ),
        ("before_memory", SiteFilter::MEMORY, InfoFlags::MEMORY),
        ("before_all", SiteFilter::ALL, InfoFlags::NONE),
    ];
    for (label, filter, what) in configs {
        g.bench_function(label, |bench| {
            bench.iter(|| {
                let mut sassi = Sassi::new();
                sassi.on_before(filter, what, Box::new(FnHandler::free(|_| {})));
                let rep = execute(w.as_ref(), Some(&mut sassi), None);
                assert!(rep.output.is_ok());
                rep.kernel_cycles
            })
        });
    }
    g.bench_function("after_reg_writes", |bench| {
        bench.iter(|| {
            let mut sassi = Sassi::new();
            sassi.on_after(
                SiteFilter::REG_WRITES,
                InfoFlags::REGISTERS,
                Box::new(FnHandler::free(|_| {})),
            );
            let rep = execute(w.as_ref(), Some(&mut sassi), None);
            assert!(rep.output.is_ok());
            rep.kernel_cycles
        })
    });
    g.finish();
}

/// Branches, global memory and register writes in one straight kernel,
/// so every site filter below finds work.
fn mixed_kernel() -> sassi_isa::Function {
    let mut b = KernelBuilder::kernel("mixed");
    let i = b.global_tid_x();
    let n = b.param_u32(0);
    let src = b.param_ptr(1);
    let dst = b.param_ptr(2);
    let p = b.setp_u32_lt(i, n);
    b.if_(p, |b| {
        let es = b.lea(src, i, 2);
        let v = b.ld_global_u32(es);
        let small = b.setp_u32_lt(v, 100u32);
        let tripled = b.imul(v, 3u32);
        let shifted = b.isub(v, 100u32);
        let r = b.sel(small, tripled, shifted);
        let ed = b.lea(dst, i, 2);
        b.st_global_u32(ed, r);
    });
    Compiler::new().compile(&b.finish()).unwrap()
}

/// Steady-state trap dispatch: one persistent device and pre-linked
/// instrumented module, relaunched per iteration so decode, site
/// binding, warp pools and handler scratch are all warm — the
/// measurement isolates the trampoline + dispatch + handler path that
/// the allocation-free fast path optimizes.
fn bench_trap_dispatch(c: &mut Criterion) {
    type HandlerBody = fn(&mut SiteCtx<'_, '_>);
    let combos: [(&str, SiteFilter, InfoFlags, bool, HandlerBody); 4] = [
        (
            "branch",
            SiteFilter::COND_BRANCHES,
            InfoFlags::COND_BRANCH,
            false,
            |ctx| {
                let taken = ctx.ballot(|l| {
                    ctx.branch_params(l)
                        .expect("branch info")
                        .direction(ctx.trap)
                });
                std::hint::black_box(taken);
            },
        ),
        (
            "memory",
            SiteFilter::MEMORY,
            InfoFlags::MEMORY,
            false,
            |ctx| {
                let mut lines = 0u64;
                for lane in ctx.active_lanes() {
                    let mp = ctx.memory_params(lane).expect("memory info");
                    lines ^= mp.address(ctx.trap) >> 5;
                }
                std::hint::black_box(lines);
            },
        ),
        (
            "register",
            SiteFilter::REG_WRITES,
            InfoFlags::REGISTERS,
            true,
            |ctx| {
                let mut acc = 0u32;
                if let Some(leader) = ctx.leader() {
                    let rp = ctx.register_params(leader).expect("register info");
                    for d in 0..rp.num_dsts(ctx.trap) {
                        for lane in ctx.active_lanes() {
                            acc &=
                                sassi::RegisterParamsView::new(ctx.trap, lane).value(ctx.trap, d);
                        }
                    }
                }
                std::hint::black_box(acc);
            },
        ),
        ("generic", SiteFilter::ALL, InfoFlags::NONE, false, |ctx| {
            std::hint::black_box(ctx.active_lanes().len());
        }),
    ];

    let mut g = c.benchmark_group("trap_dispatch");
    g.sample_size(20);
    for (label, filter, what, after, body) in combos {
        let mut sassi = Sassi::new();
        if after {
            sassi.on_after(filter, what, Box::new(FnHandler::free(body)));
        } else {
            sassi.on_before(filter, what, Box::new(FnHandler::free(body)));
        }

        let mut dev = Device::with_defaults();
        let n = 512u32;
        let src = dev.mem.alloc(4 * n as u64, 4).unwrap();
        let dst = dev.mem.alloc(4 * n as u64, 4).unwrap();
        for k in 0..n {
            dev.mem.write_u32(src + 4 * k as u64, k * 7 % 250).unwrap();
        }
        let module = Module::link(&[sassi.apply(&mixed_kernel(), 0)]).unwrap();
        let params = [n as u64, src, dst];
        let dims = LaunchDims::linear(16, 32);
        // Warm decode cache, site binding and the warp pool.
        let warm = dev
            .launch(&module, "mixed", dims, &params, &mut sassi, 0, 50_000_000)
            .unwrap();
        assert!(warm.is_ok());
        assert!(warm.stats.handler_calls > 0, "{label}: no traps fired");

        g.bench_function(label, |bench| {
            bench.iter(|| {
                let res = dev
                    .launch(&module, "mixed", dims, &params, &mut sassi, 0, 50_000_000)
                    .unwrap();
                assert!(res.is_ok());
                res.stats.handler_calls
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_instrumentation, bench_trap_dispatch);
criterion_main!(benches);
