//! Criterion benchmark: raw simulator throughput (warp instructions per
//! second) on convergent, divergent and memory-bound kernels, with the
//! pre-decoded µop interpreter benchmarked head-to-head against the
//! reference (seed) interpreter on every kernel.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use sassi_kir::{Compiler, KernelBuilder};
use sassi_sim::{Device, ExecMode, LaunchDims, Module, NoHandlers};

fn run_once(
    module: &Module,
    kernel: &str,
    mode: ExecMode,
    params_make: impl Fn(&mut Device) -> Vec<u64>,
) -> u64 {
    let mut dev = Device::with_defaults();
    dev.exec_mode = mode;
    let params = params_make(&mut dev);
    let res = dev
        .launch(
            module,
            kernel,
            LaunchDims::linear(16, 128),
            &params,
            &mut NoHandlers,
            0,
            1 << 34,
        )
        .unwrap();
    assert!(res.is_ok());
    res.stats.warp_instrs
}

fn alu_kernel() -> Module {
    let mut b = KernelBuilder::kernel("alu");
    let tid = b.global_tid_x();
    let out = b.param_ptr(0);
    let x = b.var_u32(1u32);
    let bound = b.iconst(256);
    b.for_range(0u32, bound, 1, |b, i| {
        let t = b.imad(x, 33u32, i);
        let t = b.xor(t, 0x5a5au32);
        b.assign(x, t);
    });
    let e = b.lea(out, tid, 2);
    b.st_global_u32(e, x);
    Module::link(&[Compiler::new().compile(&b.finish()).unwrap()]).unwrap()
}

fn divergent_kernel() -> Module {
    let mut b = KernelBuilder::kernel("div");
    let tid = b.global_tid_x();
    let out = b.param_ptr(0);
    let lane = b.lane_id();
    let acc = b.var_u32(0u32);
    // Every lane loops a different number of times.
    b.for_range(0u32, lane, 1, |b, i| {
        let t = b.iadd(acc, i);
        b.assign(acc, t);
    });
    let e = b.lea(out, tid, 2);
    b.st_global_u32(e, acc);
    Module::link(&[Compiler::new().compile(&b.finish()).unwrap()]).unwrap()
}

fn memory_kernel() -> Module {
    let mut b = KernelBuilder::kernel("mem");
    let tid = b.global_tid_x();
    let buf = b.param_ptr(0);
    let acc = b.var_u32(0u32);
    let bound = b.iconst(64);
    b.for_range(0u32, bound, 1, |b, i| {
        let stride = b.imul(i, 97u32);
        let idx = b.iadd(stride, tid);
        let masked = b.and(idx, 0x3ffu32);
        let e = b.lea(buf, masked, 2);
        let v = b.ld_global_u32(e);
        let t = b.iadd(acc, v);
        b.assign(acc, t);
    });
    let e = b.lea(buf, tid, 2);
    b.st_global_u32(e, acc);
    Module::link(&[Compiler::new().compile(&b.finish()).unwrap()]).unwrap()
}

fn bench_sim(c: &mut Criterion) {
    let cases = [
        ("alu_convergent", alu_kernel(), "alu"),
        ("control_divergent", divergent_kernel(), "div"),
        ("memory_bound", memory_kernel(), "mem"),
    ];
    for (label, module, kernel) in &cases {
        let instrs = run_once(module, kernel, ExecMode::Decoded, |d| {
            vec![d.mem.alloc(4096 * 4, 8).unwrap()]
        });
        let mut g = c.benchmark_group("sim");
        g.throughput(Throughput::Elements(instrs));
        for (mode, suffix) in [
            (ExecMode::Decoded, "decoded"),
            (ExecMode::Reference, "reference"),
        ] {
            g.bench_function(&format!("{label}/{suffix}"), |bench| {
                bench.iter(|| {
                    run_once(module, kernel, mode, |d| {
                        vec![d.mem.alloc(4096 * 4, 8).unwrap()]
                    })
                })
            });
        }
        g.finish();
    }
}

criterion_group!(benches, bench_sim);
criterion_main!(benches);
