//! Criterion benchmark: the memory-path fast paths of PR 5.
//!
//! `Cache::access` is measured on its three regimes — repeat hits to
//! the most recently touched line (the MRU probe), hits that need a
//! way scan, and a miss stream that exercises victim selection — and
//! the batch coalescer is measured head-to-head against the per-lane
//! reference entry on the warp shapes the hierarchy actually issues
//! (unit-stride, strided and scattered), all on persistent warm state:
//! the cache and the address buffers are built once outside the timed
//! loop.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use sassi_mem::{coalesce_addresses, coalesce_batch, Cache, CacheConfig, LINE_BYTES};

fn warm_cache() -> Cache {
    let mut c = Cache::new(CacheConfig {
        sets: 64,
        ways: 4,
        line_bytes: LINE_BYTES,
    });
    // Fill every way of every set so hit benchmarks never miss.
    for way in 0..4u64 {
        for set in 0..64u64 {
            c.access((way * 64 + set) * LINE_BYTES as u64, false);
        }
    }
    c
}

fn bench_cache(c: &mut Criterion) {
    let mut g = c.benchmark_group("cache_access");
    g.throughput(Throughput::Elements(1));

    // Same line every iteration: answered by the MRU key compare, no
    // way scan.
    let mut cache = warm_cache();
    g.bench_function("mru_repeat_hit", |b| {
        b.iter(|| black_box(cache.access(black_box(0), false)))
    });

    // Alternating lines in different sets: every access hits, but the
    // MRU key never matches, so each one pays the way scan.
    let mut cache = warm_cache();
    let pair = [0u64, 7 * LINE_BYTES as u64];
    let mut i = 0usize;
    g.bench_function("scan_hit", |b| {
        b.iter(|| {
            i = (i + 1) & 1;
            black_box(cache.access(black_box(pair[i]), false))
        })
    });

    // A streaming walk far larger than the cache: every access misses
    // and evicts (dirty lines, so writebacks are exercised too).
    let mut cache = warm_cache();
    let mut addr = 0u64;
    g.bench_function("miss_evict", |b| {
        b.iter(|| {
            addr = addr.wrapping_add(LINE_BYTES as u64);
            black_box(cache.access(black_box(addr), true))
        })
    });
    g.finish();
}

/// The three warp shapes of the divergence studies: fully coalesced,
/// strided across a few lines, and fully diverged.
fn lane_patterns() -> Vec<(&'static str, Vec<u64>)> {
    let unit: Vec<u64> = (0..32u64).map(|l| 0x1000 + 4 * l).collect();
    let strided: Vec<u64> = (0..32u64).map(|l| 0x1000 + 64 * l).collect();
    let scattered: Vec<u64> = (0..32u64)
        .map(|l| 0x1000 + (l * 2654435761) % 65536)
        .collect();
    vec![
        ("unit_stride", unit),
        ("strided", strided),
        ("scattered", scattered),
    ]
}

fn bench_coalesce(c: &mut Criterion) {
    for (name, addrs) in lane_patterns() {
        let group_name = format!("coalesce/{name}");
        let mut g = c.benchmark_group(&group_name);
        g.throughput(Throughput::Elements(addrs.len() as u64));
        g.bench_function("batch", |b| {
            b.iter(|| black_box(coalesce_batch(black_box(&addrs), 4)))
        });
        g.bench_function("per_lane", |b| {
            b.iter(|| black_box(coalesce_addresses(black_box(&addrs), 4)))
        });
        g.finish();
    }
}

criterion_group!(benches, bench_cache, bench_coalesce);
criterion_main!(benches);
