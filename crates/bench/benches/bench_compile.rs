//! Criterion benchmark: backend-compiler throughput (CFG, liveness,
//! regalloc, lowering) and the cost of the SASSI pass itself.

use criterion::{criterion_group, criterion_main, Criterion};
use sassi::{FnHandler, InfoFlags, Sassi, SiteFilter};
use sassi_kir::{Compiler, KernelBuilder};

fn big_kernel() -> sassi_kir::KFunction {
    let mut b = KernelBuilder::kernel("big");
    let n = b.param_u32(0);
    let buf = b.param_ptr(1);
    let tid = b.global_tid_x();
    let p = b.setp_u32_lt(tid, n);
    b.if_(p, |b| {
        let acc = b.var_u32(0u32);
        b.for_range(0u32, n, 1, |b, i| {
            let e = b.lea(buf, i, 2);
            let v = b.ld_global_u32(e);
            let q = b.setp_u32_lt(v, 100u32);
            b.if_else(
                q,
                |b| {
                    let t = b.imad(v, 3u32, acc);
                    b.assign(acc, t);
                },
                |b| {
                    let t = b.isub(acc, v);
                    b.assign(acc, t);
                },
            );
        });
        let e = b.lea(buf, tid, 2);
        b.st_global_u32(e, acc);
    });
    b.finish()
}

fn bench_compile(c: &mut Criterion) {
    let kf = big_kernel();
    c.bench_function("compile/backend", |bench| {
        bench.iter(|| Compiler::new().compile(std::hint::black_box(&kf)).unwrap())
    });
    c.bench_function("compile/backend_capped16", |bench| {
        bench.iter(|| {
            Compiler::new()
                .max_regs(16)
                .compile(std::hint::black_box(&kf))
                .unwrap()
        })
    });

    let func = Compiler::new().compile(&kf).unwrap();
    let mut sassi = Sassi::new();
    sassi.on_before(
        SiteFilter::ALL,
        InfoFlags::NONE,
        Box::new(FnHandler::free(|_| {})),
    );
    c.bench_function("compile/sassi_pass_all_sites", |bench| {
        bench.iter(|| sassi.apply(std::hint::black_box(&func), 0))
    });
    let mut mem = Sassi::new();
    mem.on_before(
        SiteFilter::MEMORY,
        InfoFlags::MEMORY,
        Box::new(FnHandler::free(|_| {})),
    );
    c.bench_function("compile/sassi_pass_memory_sites", |bench| {
        bench.iter(|| mem.apply(std::hint::black_box(&func), 0))
    });
}

criterion_group!(benches, bench_compile);
criterion_main!(benches);
