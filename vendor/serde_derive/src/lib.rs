//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! vendored value-tree `serde` facade, without `syn`/`quote` (which are
//! equally unavailable offline). A small hand-rolled token walker
//! parses the item shapes this workspace actually uses:
//!
//! - structs with named fields,
//! - tuple structs (any arity; arity 1 serializes transparently),
//! - unit structs,
//! - enums with unit, tuple and struct variants.
//!
//! Generics are rejected with a compile error — no serialized type in
//! the workspace is generic.

use proc_macro::{Delimiter, TokenStream, TokenTree};

// ------------------------------------------------------------- model --

enum Fields {
    Named(Vec<String>),
    Tuple(usize),
    Unit,
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

// ----------------------------------------------------------- parsing --

struct Cursor {
    toks: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(ts: TokenStream) -> Cursor {
        Cursor {
            toks: ts.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.toks.get(self.pos)
    }

    fn skip_attributes(&mut self) {
        while let Some(TokenTree::Punct(p)) = self.peek() {
            if p.as_char() != '#' {
                break;
            }
            self.pos += 1; // '#'
            if let Some(TokenTree::Group(g)) = self.peek() {
                if g.delimiter() == Delimiter::Bracket {
                    self.pos += 1;
                }
            }
        }
    }

    fn skip_visibility(&mut self) {
        if let Some(TokenTree::Ident(id)) = self.peek() {
            if id.to_string() == "pub" {
                self.pos += 1;
                if let Some(TokenTree::Group(g)) = self.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        self.pos += 1;
                    }
                }
            }
        }
    }

    /// Skips one type (or discriminant expression): everything up to a
    /// comma at angle-bracket depth 0. Stray `>` from `->` is clamped.
    fn skip_until_comma(&mut self) {
        let mut depth = 0i32;
        while let Some(t) = self.peek() {
            match t {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth = (depth - 1).max(0),
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => return,
                _ => {}
            }
            self.pos += 1;
        }
    }

    fn eat_ident(&mut self) -> Option<String> {
        match self.peek() {
            Some(TokenTree::Ident(id)) => {
                let s = id.to_string();
                self.pos += 1;
                Some(s)
            }
            _ => None,
        }
    }

    fn eat_punct(&mut self, c: char) -> bool {
        match self.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == c => {
                self.pos += 1;
                true
            }
            _ => false,
        }
    }
}

fn parse_named_fields(body: TokenStream) -> Vec<String> {
    let mut c = Cursor::new(body);
    let mut names = Vec::new();
    loop {
        c.skip_attributes();
        c.skip_visibility();
        let Some(name) = c.eat_ident() else { break };
        names.push(name);
        if !c.eat_punct(':') {
            break;
        }
        c.skip_until_comma();
        if !c.eat_punct(',') {
            break;
        }
    }
    names
}

fn parse_tuple_fields(body: TokenStream) -> usize {
    let mut c = Cursor::new(body);
    let mut n = 0;
    while c.peek().is_some() {
        c.skip_attributes();
        c.skip_visibility();
        if c.peek().is_none() {
            break;
        }
        n += 1;
        c.skip_until_comma();
        if !c.eat_punct(',') {
            break;
        }
    }
    n
}

fn parse_variants(body: TokenStream) -> Vec<Variant> {
    let mut c = Cursor::new(body);
    let mut out = Vec::new();
    loop {
        c.skip_attributes();
        let Some(name) = c.eat_ident() else { break };
        let fields = match c.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let names = parse_named_fields(g.stream());
                c.pos += 1;
                Fields::Named(names)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = parse_tuple_fields(g.stream());
                c.pos += 1;
                Fields::Tuple(n)
            }
            _ => Fields::Unit,
        };
        if c.eat_punct('=') {
            c.skip_until_comma(); // explicit discriminant
        }
        out.push(Variant { name, fields });
        if !c.eat_punct(',') {
            break;
        }
    }
    out
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let mut c = Cursor::new(input);
    c.skip_attributes();
    c.skip_visibility();
    let kw = c
        .eat_ident()
        .ok_or_else(|| "expected `struct` or `enum`".to_string())?;
    let name = c
        .eat_ident()
        .ok_or_else(|| "expected item name".to_string())?;
    if matches!(c.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "vendored serde_derive does not support generic type `{name}`"
        ));
    }
    match kw.as_str() {
        "struct" => {
            let fields = match c.peek() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(parse_tuple_fields(g.stream()))
                }
                _ => Fields::Unit,
            };
            Ok(Item::Struct { name, fields })
        }
        "enum" => match c.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Ok(Item::Enum {
                variants: parse_variants(g.stream()),
                name,
            }),
            _ => Err(format!("enum `{name}` has no body")),
        },
        other => Err(format!("cannot derive for `{other}` items")),
    }
}

// -------------------------------------------------------- generation --

fn tuple_binders(n: usize) -> Vec<String> {
    (0..n).map(|i| format!("__f{i}")).collect()
}

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Named(names) => {
                    let pairs: Vec<String> = names
                        .iter()
                        .map(|f| {
                            format!(
                                "(::std::string::String::from(\"{f}\"), \
                                 ::serde::Serialize::to_value(&self.{f}))"
                            )
                        })
                        .collect();
                    format!("::serde::Value::Map(::std::vec![{}])", pairs.join(", "))
                }
                Fields::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
                Fields::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                        .collect();
                    format!("::serde::Value::Seq(::std::vec![{}])", items.join(", "))
                }
                Fields::Unit => "::serde::Value::Null".to_string(),
            };
            format!(
                "#[automatically_derived]\n\
                 impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.fields {
                        Fields::Unit => format!(
                            "{name}::{vn} => \
                             ::serde::Value::Str(::std::string::String::from(\"{vn}\")),"
                        ),
                        Fields::Tuple(n) => {
                            let binders = tuple_binders(*n);
                            let inner = if *n == 1 {
                                format!("::serde::Serialize::to_value({})", binders[0])
                            } else {
                                let items: Vec<String> = binders
                                    .iter()
                                    .map(|b| format!("::serde::Serialize::to_value({b})"))
                                    .collect();
                                format!("::serde::Value::Seq(::std::vec![{}])", items.join(", "))
                            };
                            format!(
                                "{name}::{vn}({}) => ::serde::Value::Map(::std::vec![\
                                 (::std::string::String::from(\"{vn}\"), {inner})]),",
                                binders.join(", ")
                            )
                        }
                        Fields::Named(fs) => {
                            let pairs: Vec<String> = fs
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(::std::string::String::from(\"{f}\"), \
                                         ::serde::Serialize::to_value({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {} }} => ::serde::Value::Map(::std::vec![\
                                 (::std::string::String::from(\"{vn}\"), \
                                 ::serde::Value::Map(::std::vec![{}]))]),",
                                fs.join(", "),
                                pairs.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "#[automatically_derived]\n\
                 impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{ {} }}\n\
                     }}\n\
                 }}",
                arms.join("\n")
            )
        }
    }
}

fn gen_named_ctor(path: &str, fields: &[String], map_expr: &str) -> String {
    let inits: Vec<String> = fields
        .iter()
        .map(|f| {
            format!(
                "{f}: ::serde::Deserialize::from_value(\
                 ::serde::map_field({map_expr}, \"{f}\")?)?"
            )
        })
        .collect();
    format!("{path} {{ {} }}", inits.join(", "))
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Named(fs) => {
                    let ctor = gen_named_ctor(name, fs, "__m");
                    format!(
                        "match __v {{\n\
                             ::serde::Value::Map(__m) => ::std::result::Result::Ok({ctor}),\n\
                             _ => ::std::result::Result::Err(\
                                 ::serde::DeError::expected(\"map for {name}\", __v)),\n\
                         }}"
                    )
                }
                Fields::Tuple(1) => format!(
                    "::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))"
                ),
                Fields::Tuple(n) => {
                    let gets: Vec<String> = (0..*n)
                        .map(|i| {
                            format!(
                                "::serde::Deserialize::from_value(\
                                 ::serde::seq_element(__items, {i}, __v)?)?"
                            )
                        })
                        .collect();
                    format!(
                        "match __v {{\n\
                             ::serde::Value::Seq(__items) => \
                                 ::std::result::Result::Ok({name}({})),\n\
                             _ => ::std::result::Result::Err(\
                                 ::serde::DeError::expected(\"sequence for {name}\", __v)),\n\
                         }}",
                        gets.join(", ")
                    )
                }
                Fields::Unit => format!("::std::result::Result::Ok({name})"),
            };
            format!(
                "#[automatically_derived]\n\
                 impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &::serde::Value) -> \
                         ::std::result::Result<{name}, ::serde::DeError> {{ {body} }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.fields, Fields::Unit))
                .map(|v| {
                    format!(
                        "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),",
                        vn = v.name
                    )
                })
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    match &v.fields {
                        Fields::Unit => None,
                        Fields::Tuple(1) => Some(format!(
                            "\"{vn}\" => ::std::result::Result::Ok(\
                             {name}::{vn}(::serde::Deserialize::from_value(__inner)?)),"
                        )),
                        Fields::Tuple(n) => {
                            let gets: Vec<String> = (0..*n)
                                .map(|i| {
                                    format!(
                                        "::serde::Deserialize::from_value(\
                                         ::serde::seq_element(__items, {i}, __inner)?)?"
                                    )
                                })
                                .collect();
                            Some(format!(
                                "\"{vn}\" => match __inner {{\n\
                                     ::serde::Value::Seq(__items) => \
                                         ::std::result::Result::Ok({name}::{vn}({})),\n\
                                     _ => ::std::result::Result::Err(\
                                         ::serde::DeError::expected(\
                                         \"sequence for {name}::{vn}\", __inner)),\n\
                                 }},",
                                gets.join(", ")
                            ))
                        }
                        Fields::Named(fs) => {
                            let ctor = gen_named_ctor(&format!("{name}::{vn}"), fs, "__fm");
                            Some(format!(
                                "\"{vn}\" => match __inner {{\n\
                                     ::serde::Value::Map(__fm) => \
                                         ::std::result::Result::Ok({ctor}),\n\
                                     _ => ::std::result::Result::Err(\
                                         ::serde::DeError::expected(\
                                         \"map for {name}::{vn}\", __inner)),\n\
                                 }},",
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "#[automatically_derived]\n\
                 impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &::serde::Value) -> \
                         ::std::result::Result<{name}, ::serde::DeError> {{\n\
                         match __v {{\n\
                             ::serde::Value::Str(__s) => match __s.as_str() {{\n\
                                 {}\n\
                                 _ => ::std::result::Result::Err(\
                                     ::serde::DeError::expected(\
                                     \"variant of {name}\", __v)),\n\
                             }},\n\
                             ::serde::Value::Map(__m) if __m.len() == 1 => {{\n\
                                 let (__tag, __inner) = &__m[0];\n\
                                 match __tag.as_str() {{\n\
                                     {}\n\
                                     _ => ::std::result::Result::Err(\
                                         ::serde::DeError::expected(\
                                         \"variant of {name}\", __v)),\n\
                                 }}\n\
                             }}\n\
                             _ => ::std::result::Result::Err(\
                                 ::serde::DeError::expected(\"{name}\", __v)),\n\
                         }}\n\
                     }}\n\
                 }}",
                unit_arms.join("\n"),
                data_arms.join("\n")
            )
        }
    }
}

fn expand(input: TokenStream, gen: fn(&Item) -> String) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen(&item)
            .parse()
            .expect("vendored serde_derive generated invalid Rust"),
        Err(msg) => format!("::core::compile_error!({msg:?});").parse().unwrap(),
    }
}

/// Derives the vendored `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, gen_serialize)
}

/// Derives the vendored `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, gen_deserialize)
}
