//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no crates.io access, so the workspace
//! vendors a compatible-in-spirit serialization facade: types derive
//! [`Serialize`]/[`Deserialize`] exactly as with real serde, but the
//! data model is a concrete [`Value`] tree rather than serde's
//! visitor machinery. `serde_json` (also vendored) renders that tree.
//!
//! Field order is declaration order and map rendering preserves
//! insertion order, so serialized output is a pure function of the
//! data — the property the deterministic campaign engine relies on
//! for byte-identical `results/*.json` across `--jobs` settings.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

use std::collections::BTreeMap;
use std::fmt;

/// The serialization data model.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// Boolean.
    Bool(bool),
    /// Unsigned integer.
    U64(u64),
    /// Signed integer (only used for negative values).
    I64(i64),
    /// Floating point.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Seq(Vec<Value>),
    /// Object with insertion-ordered keys.
    Map(Vec<(String, Value)>),
}

/// Types that can render themselves into a [`Value`] tree.
pub trait Serialize {
    /// Builds the value tree.
    fn to_value(&self) -> Value;
}

/// Deserialization failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeError(pub String);

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for DeError {}

impl DeError {
    /// Builds an error describing a type mismatch.
    pub fn expected(what: &str, got: &Value) -> DeError {
        DeError(format!("expected {what}, got {got:?}"))
    }
}

/// Types reconstructible from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds the value.
    ///
    /// # Errors
    ///
    /// [`DeError`] when the tree does not match the expected shape.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

// ------------------------------------------------------- primitives --

macro_rules! ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::U64(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<$t, DeError> {
                match v {
                    Value::U64(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError::expected(stringify!($t), v)),
                    _ => Err(DeError::expected(stringify!($t), v)),
                }
            }
        }
    )*};
}

ser_uint!(u8, u16, u32, u64, usize);

macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                if *self >= 0 { Value::U64(*self as u64) } else { Value::I64(*self as i64) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<$t, DeError> {
                match v {
                    Value::U64(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError::expected(stringify!($t), v)),
                    Value::I64(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError::expected(stringify!($t), v)),
                    _ => Err(DeError::expected(stringify!($t), v)),
                }
            }
        }
    )*};
}

ser_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<f64, DeError> {
        match v {
            Value::F64(f) => Ok(*f),
            Value::U64(n) => Ok(*n as f64),
            Value::I64(n) => Ok(*n as f64),
            _ => Err(DeError::expected("f64", v)),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<f32, DeError> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<bool, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(DeError::expected("bool", v)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<String, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(DeError::expected("string", v)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

// ------------------------------------------------------ compositions --

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Option<T>, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Vec<T>, DeError> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            _ => Err(DeError::expected("array", v)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<[T; N], DeError> {
        let items = Vec::<T>::from_value(v)?;
        <[T; N]>::try_from(items).map_err(|e| DeError(format!("expected {N} elements, got {e:?}")))
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (key_string(&k.to_value()), v.to_value()))
                .collect(),
        )
    }
}

/// Map-key types (JSON object keys are strings).
pub trait MapKey: Sized {
    /// Parses the key back from its string form.
    ///
    /// # Errors
    ///
    /// [`DeError`] when the text does not parse as `Self`.
    fn from_key(s: &str) -> Result<Self, DeError>;
}

macro_rules! int_key {
    ($($t:ty),*) => {$(
        impl MapKey for $t {
            fn from_key(s: &str) -> Result<$t, DeError> {
                s.parse().map_err(|_| DeError(format!(
                    "bad {} map key `{s}`", stringify!($t)
                )))
            }
        }
    )*};
}

int_key!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl MapKey for String {
    fn from_key(s: &str) -> Result<String, DeError> {
        Ok(s.to_owned())
    }
}

impl<K: Deserialize + MapKey + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<BTreeMap<K, V>, DeError> {
        match v {
            Value::Map(entries) => entries
                .iter()
                .map(|(k, val)| Ok((K::from_key(k)?, V::from_value(val)?)))
                .collect(),
            _ => Err(DeError::expected("map", v)),
        }
    }
}

fn key_string(v: &Value) -> String {
    match v {
        Value::Str(s) => s.clone(),
        Value::U64(n) => n.to_string(),
        Value::I64(n) => n.to_string(),
        Value::Bool(b) => b.to_string(),
        other => format!("{other:?}"),
    }
}

macro_rules! ser_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<($($t,)+), DeError> {
                match v {
                    Value::Seq(items) => Ok(($(
                        $t::from_value(
                            items.get($n).ok_or_else(|| DeError::expected("tuple element", v))?
                        )?,
                    )+)),
                    _ => Err(DeError::expected("tuple (array)", v)),
                }
            }
        }
    )*};
}

ser_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}

/// Looks up a struct field inside a serialized map (derive support).
///
/// # Errors
///
/// [`DeError`] when `key` is absent.
pub fn map_field<'a>(m: &'a [(String, Value)], key: &str) -> Result<&'a Value, DeError> {
    m.iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| DeError(format!("missing field `{key}`")))
}

/// Indexes into a serialized sequence (derive support).
///
/// # Errors
///
/// [`DeError`] when `idx` is out of bounds.
pub fn seq_element<'a>(
    items: &'a [Value],
    idx: usize,
    whole: &Value,
) -> Result<&'a Value, DeError> {
    items
        .get(idx)
        .ok_or_else(|| DeError(format!("missing element {idx} in {whole:?}")))
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Value, DeError> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u32::from_value(&42u32.to_value()), Ok(42));
        assert_eq!(i64::from_value(&(-3i64).to_value()), Ok(-3));
        assert_eq!(bool::from_value(&true.to_value()), Ok(true));
        assert_eq!(
            String::from_value(&String::from("x").to_value()),
            Ok(String::from("x"))
        );
    }

    #[test]
    fn collections_roundtrip() {
        let v = vec![(1u64, 2.5f64), (3, 4.5)];
        let tree = v.to_value();
        assert_eq!(Vec::<(u64, f64)>::from_value(&tree), Ok(v));
        let arr = [7u64; 3];
        assert_eq!(<[u64; 3]>::from_value(&arr.to_value()), Ok(arr));
        assert_eq!(Option::<u32>::from_value(&Value::Null), Ok(None));
    }

    #[test]
    fn narrowing_is_checked() {
        assert!(u8::from_value(&Value::U64(300)).is_err());
        assert!(u32::from_value(&Value::Str(String::new())).is_err());
    }
}
