//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small API subset it uses: a non-poisoning [`Mutex`] and
//! [`RwLock`] layered over `std::sync`. Lock poisoning is deliberately
//! swallowed (as in the real parking_lot): a panicked writer does not
//! wedge every later reader.

#![forbid(unsafe_code)]

use std::sync::{
    Mutex as StdMutex, MutexGuard as StdMutexGuard, RwLock as StdRwLock,
    RwLockReadGuard as StdRwLockReadGuard, RwLockWriteGuard as StdRwLockWriteGuard,
};

/// A mutual-exclusion lock whose `lock()` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(StdMutex<T>);

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = StdMutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(StdMutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock whose guards never surface poison errors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(StdRwLock<T>);

/// Shared guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = StdRwLockReadGuard<'a, T>;
/// Exclusive guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = StdRwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new lock protecting `value`.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(StdRwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(41);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(String::from("a"));
        l.write().push('b');
        assert_eq!(&*l.read(), "ab");
    }

    #[test]
    fn lock_survives_a_panicked_holder() {
        let m = std::sync::Arc::new(Mutex::new(0u32));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
