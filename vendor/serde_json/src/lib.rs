//! Offline stand-in for `serde_json` over the vendored `serde` facade.
//!
//! Rendering is deterministic: key order is the serializer's insertion
//! order, floats print via Rust's shortest-roundtrip formatter, and
//! indentation matches real serde_json's `to_string_pretty` (two
//! spaces). The deterministic campaign engine relies on this to make
//! `results/*.json` byte-identical regardless of `--jobs`.

#![forbid(unsafe_code)]

use serde::{DeError, Deserialize, Serialize, Value};
use std::fmt;

/// JSON error (serialization is infallible; parsing is not).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error(pub String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Error {
        Error(e.0)
    }
}

// ----------------------------------------------------------- writing --

fn push_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn push_f64(out: &mut String, f: f64) {
    if f.is_finite() {
        let s = format!("{f:?}");
        out.push_str(&s);
    } else {
        // Real serde_json refuses non-finite floats; render null like
        // its `Value` pathway does.
        out.push_str("null");
    }
}

fn write_value(out: &mut String, v: &Value, indent: usize, pretty: bool) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(f) => push_f64(out, *f),
        Value::Str(s) => push_escaped(out, s),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if pretty {
                    out.push('\n');
                    out.push_str(&"  ".repeat(indent + 1));
                }
                write_value(out, item, indent + 1, pretty);
            }
            if pretty {
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
            }
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if pretty {
                    out.push('\n');
                    out.push_str(&"  ".repeat(indent + 1));
                }
                push_escaped(out, k);
                out.push(':');
                if pretty {
                    out.push(' ');
                }
                write_value(out, item, indent + 1, pretty);
            }
            if pretty {
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
            }
            out.push('}');
        }
    }
}

/// Renders `value` as compact JSON.
///
/// # Errors
///
/// Never fails; the `Result` mirrors real serde_json's signature.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), 0, false);
    Ok(out)
}

/// Renders `value` as two-space-indented JSON.
///
/// # Errors
///
/// Never fails; the `Result` mirrors real serde_json's signature.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), 0, true);
    Ok(out)
}

// ----------------------------------------------------------- parsing --

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err<T>(&self, msg: &str) -> Result<T, Error> {
        Err(Error(format!("{msg} at byte {}", self.pos)))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\n' || b == b'\t' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(&format!("expected `{}`", b as char))
        }
    }

    fn literal(&mut self, word: &str) -> bool {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            true
        } else {
            false
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return self.err("unterminated string"),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error("bad \\u escape".into()))?,
                                16,
                            )
                            .map_err(|_| Error("bad \\u escape".into()))?;
                            s.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        _ => return self.err("bad escape"),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error("invalid UTF-8".into()))?;
                    let c = rest.chars().next().unwrap();
                    s.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".into()))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|_| Error(format!("invalid number `{text}`")))
        } else if let Some(stripped) = text.strip_prefix('-') {
            stripped
                .parse::<u64>()
                .map(|n| Value::I64(-(n as i64)))
                .map_err(|_| Error(format!("invalid number `{text}`")))
        } else {
            text.parse::<u64>()
                .map(Value::U64)
                .map_err(|_| Error(format!("invalid number `{text}`")))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            None => self.err("unexpected end of input"),
            Some(b'n') if self.literal("null") => Ok(Value::Null),
            Some(b't') if self.literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    items.push(self.value()?);
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Seq(items));
                        }
                        _ => return self.err("expected `,` or `]`"),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.expect(b':')?;
                    entries.push((key, self.value()?));
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Map(entries));
                        }
                        _ => return self.err("expected `,` or `}`"),
                    }
                }
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => self.err(&format!("unexpected byte `{}`", b as char)),
        }
    }
}

/// Parses JSON text into a `T`.
///
/// # Errors
///
/// [`Error`] on malformed JSON or a shape mismatch.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return p.err("trailing characters");
    }
    Ok(T::from_value(&v)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_like_serde_json() {
        let v = Value::Map(vec![
            ("a".into(), Value::U64(1)),
            ("b".into(), Value::Seq(vec![Value::F64(1.5), Value::Null])),
        ]);
        assert_eq!(to_string(&v).unwrap(), r#"{"a":1,"b":[1.5,null]}"#);
        assert_eq!(
            to_string_pretty(&v).unwrap(),
            "{\n  \"a\": 1,\n  \"b\": [\n    1.5,\n    null\n  ]\n}"
        );
    }

    #[test]
    fn floats_keep_decimal_point() {
        assert_eq!(to_string(&1.0f64).unwrap(), "1.0");
        assert_eq!(to_string(&0.1f64).unwrap(), "0.1");
    }

    #[test]
    fn parse_roundtrip() {
        let text = r#"{"x": [1, -2, 3.25, "s\n", true, null], "y": {}}"#;
        let v: Value = from_str(text).unwrap();
        let rendered = to_string(&v).unwrap();
        let v2: Value = from_str(&rendered).unwrap();
        assert_eq!(v, v2);
    }

    #[test]
    fn typed_roundtrip() {
        let rows = vec![(1u64, 2.5f64, String::from("nn"))];
        let text = to_string_pretty(&rows).unwrap();
        let back: Vec<(u64, f64, String)> = from_str(&text).unwrap();
        assert_eq!(back, rows);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("1 2").is_err());
    }
}
