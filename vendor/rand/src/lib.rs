//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no crates.io access, so the workspace
//! vendors the API subset it uses: [`rngs::StdRng`] seeded with
//! [`SeedableRng::seed_from_u64`], plus [`Rng::gen`], [`Rng::gen_range`]
//! and [`Rng::gen_bool`].
//!
//! The generator is SplitMix64 — a different stream than upstream
//! rand's ChaCha12-based `StdRng`, but every consumer in this workspace
//! only requires *determinism for a fixed seed*, never a specific
//! stream. Synthetic datasets and injection-site selections therefore
//! stay bit-reproducible across runs, platforms and thread counts.

#![forbid(unsafe_code)]

/// Seeding constructors.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types producible by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges samplable by [`Rng::gen_range`] producing `T`.
///
/// `T` is a trait parameter (not an associated type) so that type
/// inference can flow from the call site's expected value type into
/// the range literal, exactly as with upstream rand.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

/// Draws uniformly from `[0, span)` without modulo bias (Lemire's
/// widening-multiply method — deterministic and cheap).
fn uniform_below<R: Rng + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0, "empty sampling range");
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (span as u128);
        let lo = m as u64;
        if lo >= span {
            return (m >> 64) as u64;
        }
        // Reject the biased low region: threshold = 2^64 mod span.
        let threshold = span.wrapping_neg() % span;
        if lo >= threshold {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                if span == 0 {
                    // Full-width inclusive range.
                    return <$t as FromU64>::from_u64(rng.next_u64());
                }
                (lo as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
    )*};
}

int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

trait FromU64 {
    fn from_u64(v: u64) -> Self;
}

macro_rules! from_u64 {
    ($($t:ty),*) => {$(
        impl FromU64 for $t {
            fn from_u64(v: u64) -> $t { v as $t }
        }
    )*};
}

from_u64!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f32> for core::ops::Range<f32> {
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "gen_range: empty range");
        let unit = (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32;
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

/// The user-facing generator interface.
pub trait Rng {
    /// The raw 64-bit stream.
    fn next_u64(&mut self) -> u64;

    /// Draws a value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// Draws uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of [0,1]");
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard deterministic generator (SplitMix64).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng { state: seed }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea & Flood): passes BigCrush, one
            // u64 of state, and a pure function of the seed.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = r.gen_range(10u32..20);
            assert!((10..20).contains(&v));
            let w = r.gen_range(1usize..=8);
            assert!((1..=8).contains(&w));
            let f = r.gen_range(0.0f32..1.0);
            assert!((0.0..1.0).contains(&f));
            let s = r.gen_range(-5i32..5);
            assert!((-5..5).contains(&s));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(2);
        assert!((0..64).all(|_| !r.gen_bool(0.0)));
        assert!((0..64).all(|_| r.gen_bool(1.0)));
    }

    #[test]
    fn uniform_covers_small_range() {
        let mut r = StdRng::seed_from_u64(3);
        let mut seen = [false; 4];
        for _ in 0..256 {
            seen[r.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
