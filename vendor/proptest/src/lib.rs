//! Offline stand-in for the `proptest` crate.
//!
//! Implements the generate-and-check core the workspace's property
//! tests use — `proptest!`, `Strategy`, `prop_map`, `prop_oneof!`,
//! `any`, ranged integers and `prop::collection::vec` — without
//! shrinking. Case generation is deterministic: the RNG seed is a pure
//! function of the test-case index, so failures reproduce exactly and
//! CI runs are stable.

#![forbid(unsafe_code)]

/// Deterministic per-case generator (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Builds the RNG for one test case.
    pub fn for_case(case: u64) -> TestRng {
        TestRng {
            // Mix so consecutive cases land far apart in the stream.
            state: case.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xDEAD_BEEF_CAFE_F00D,
        }
    }

    /// The raw 64-bit stream.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, span)`.
    pub fn below(&mut self, span: u64) -> u64 {
        assert!(span > 0, "empty range");
        ((self.next_u64() as u128 * span as u128) >> 64) as u64
    }
}

/// A value generator.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (for heterogeneous `prop_oneof!` arms).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(move |rng| self.generate(rng)))
    }
}

/// Result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<V>(Box<dyn Fn(&mut TestRng) -> V>);

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        (self.0)(rng)
    }
}

/// Uniform choice between type-erased strategies (`prop_oneof!`).
pub struct OneOf<V>(pub Vec<BoxedStrategy<V>>);

impl<V> Strategy for OneOf<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let idx = rng.below(self.0.len() as u64) as usize;
        self.0[idx].generate(rng)
    }
}

// ------------------------------------------------------------- ranges --

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

// ---------------------------------------------------------------- any --

/// Strategy for "any value of `T`" ([`any`]).
pub struct Any<T>(core::marker::PhantomData<T>);

/// Types with a canonical full-range strategy.
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arb_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t { rng.next_u64() as $t }
        }
    )*};
}

arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The full-range strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}

// ------------------------------------------------------------- tuples --

macro_rules! tuple_strategy {
    ($(($($n:tt $s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
}

// -------------------------------------------------------- collections --

/// `prop::collection` equivalents.
pub mod collection {
    use super::{Strategy, TestRng};

    /// Strategy for vectors with lengths drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max_exclusive: usize,
    }

    /// Builds a vector strategy: `len ∈ size` elements of `element`.
    pub fn vec<S: Strategy>(element: S, size: core::ops::Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty size range");
        VecStrategy {
            element,
            min: size.start,
            max_exclusive: size.end,
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.max_exclusive - self.min) as u64;
            let len = self.min + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

// -------------------------------------------------------------- config --

/// Per-block configuration (only `cases` is honoured).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

// -------------------------------------------------------------- macros --

/// Declares property tests (no-shrink stand-in for proptest's macro).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    (@cfg ($cfg:expr)
        $( $(#[$meta:meta])* fn $name:ident(
            $($arg:ident in $strat:expr),+ $(,)?
        ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                for __case in 0..config.cases {
                    let mut __rng = $crate::TestRng::for_case(__case as u64);
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Asserts inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::OneOf(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// The glob-import surface matching `proptest::prelude::*`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_oneof, proptest, Arbitrary, BoxedStrategy,
        ProptestConfig, Strategy, TestRng,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in 3u32..17, v in prop::collection::vec(0u8..4, 1..9)) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(!v.is_empty() && v.len() < 9);
            prop_assert!(v.iter().all(|&b| b < 4), "v = {:?}", v);
        }

        #[test]
        fn mapped_and_oneof(
            s in prop_oneof![
                (0u32..5).prop_map(|n| n as u64),
                (10u32..15).prop_map(|n| n as u64),
            ],
        ) {
            prop_assert!(s < 5 || (10..15).contains(&s));
        }
    }

    #[test]
    fn deterministic_per_case() {
        let mut a = TestRng::for_case(3);
        let mut b = TestRng::for_case(3);
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
