//! Offline stand-in for the `criterion` crate.
//!
//! Provides the API subset the workspace's benches use —
//! `criterion_group!`/`criterion_main!`, [`Criterion::bench_function`],
//! [`Criterion::benchmark_group`], [`Bencher::iter`], [`Throughput`] —
//! with a simple median-of-samples timer instead of criterion's full
//! statistical machinery. Good enough to compare orders of magnitude
//! and to keep `cargo bench` runnable offline.
//!
//! Like real criterion, `cargo bench -- --test` runs every benchmark
//! body exactly once with no timing — the CI smoke mode that proves the
//! benches still compile and execute.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Re-export of the standard black box (criterion's is a re-export too).
pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            sample_size: 10,
            test_mode: std::env::args().any(|a| a == "--test"),
        }
    }
}

/// Per-iteration timer handle.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: usize,
    test_mode: bool,
}

impl Bencher {
    /// Times `f`, first warming up and sizing the iteration count.
    /// In `--test` mode, runs `f` once and records nothing.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.test_mode {
            black_box(f());
            return;
        }
        // Warm-up and calibration: target ~20ms per sample.
        let t0 = Instant::now();
        black_box(f());
        let once = t0.elapsed().max(Duration::from_nanos(50));
        let per_sample = (Duration::from_millis(20).as_nanos() / once.as_nanos()).max(1) as usize;
        self.iters_per_sample = per_sample;
        for _ in 0..self.samples.capacity() {
            let t = Instant::now();
            for _ in 0..per_sample {
                black_box(f());
            }
            self.samples.push(t.elapsed());
        }
    }

    fn report(&self, name: &str, throughput: Option<&Throughput>) {
        if self.test_mode {
            println!("{name:<40} smoke ok (1 iteration, untimed)");
            return;
        }
        if self.samples.is_empty() {
            return;
        }
        let mut per_iter: Vec<f64> = self
            .samples
            .iter()
            .map(|d| d.as_secs_f64() / self.iters_per_sample as f64)
            .collect();
        per_iter.sort_by(f64::total_cmp);
        let median = per_iter[per_iter.len() / 2];
        let (lo, hi) = (per_iter[0], per_iter[per_iter.len() - 1]);
        let fmt = |s: f64| -> String {
            if s < 1e-6 {
                format!("{:.1} ns", s * 1e9)
            } else if s < 1e-3 {
                format!("{:.2} µs", s * 1e6)
            } else if s < 1.0 {
                format!("{:.2} ms", s * 1e3)
            } else {
                format!("{s:.3} s")
            }
        };
        print!("{name:<40} [{} .. {} .. {}]", fmt(lo), fmt(median), fmt(hi));
        if let Some(tp) = throughput {
            let (n, unit) = match tp {
                Throughput::Elements(n) => (*n, "elem"),
                Throughput::Bytes(n) => (*n, "B"),
            };
            if median > 0.0 {
                print!("  {:.0} {unit}/s", n as f64 / median);
            }
        }
        println!();
    }
}

/// Units of work per iteration, for rate reporting.
pub enum Throughput {
    /// Logical elements per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            iters_per_sample: 1,
            test_mode: self.test_mode,
        };
        f(&mut b);
        b.report(name, None);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            throughput: None,
            sample_size: None,
        }
    }
}

/// A named group sharing sample-size/throughput settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Sets the per-iteration throughput used in reports.
    pub fn throughput(&mut self, tp: Throughput) -> &mut Self {
        self.throughput = Some(tp);
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let samples = self.sample_size.unwrap_or(self.criterion.sample_size);
        let mut b = Bencher {
            samples: Vec::with_capacity(samples),
            iters_per_sample: 1,
            test_mode: self.criterion.test_mode,
        };
        f(&mut b);
        b.report(&format!("{}/{name}", self.name), self.throughput.as_ref());
        self
    }

    /// Ends the group (no-op; exists for API parity).
    pub fn finish(&mut self) {}
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the bench entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
