//! Cross-crate integration tests: scenarios spanning the builder, the
//! backend compiler, the instrumentor, the linker, the runtime and the
//! simulator.

use parking_lot::Mutex;
use sassi::{FnHandler, InfoFlags, Sassi, SiteFilter};
use sassi_isa::GLOBAL_HEAP_BASE;
use sassi_kir::KernelBuilder;
use sassi_rt::{LaunchDims, ModuleBuilder, Runtime};
use sassi_sim::NoHandlers;
use std::sync::Arc;

/// Shared-memory tile + barrier + warp shuffle, fully instrumented:
/// each block reverses its 64 elements through shared memory, then each
/// warp computes a shuffle-reduced sum.
#[test]
fn shared_memory_barrier_and_shuffle_under_instrumentation() {
    let mut b = KernelBuilder::kernel("revsum");
    let tile = b.shared_alloc(64 * 4);
    let tid = b.tid_x();
    let src = b.param_ptr(0);
    let dst = b.param_ptr(1);
    let sums = b.param_ptr(2);
    let gid = b.global_tid_x();
    let e = b.lea(src, gid, 2);
    let v = b.ld_global_u32(e);
    // tile[63 - tid] = v
    let k63 = b.iconst(63);
    let rev = b.isub(k63, tid);
    let off = b.shl(rev, 2u32);
    let base = b.iconst(tile.offset);
    let addr = b.iadd(off, base);
    b.st_shared_u32(addr, 0, v);
    b.bar_sync();
    // out[gid] = tile[tid]
    let off2 = b.shl(tid, 2u32);
    let addr2 = b.iadd(off2, base);
    let rv = b.ld_shared_u32(addr2, 0);
    let eo = b.lea(dst, gid, 2);
    b.st_global_u32(eo, rv);
    // warp-reduced sum of rv via butterfly shuffles
    let acc = b.var_u32(0u32);
    b.assign(acc, rv);
    for d in [16u32, 8, 4, 2, 1] {
        let o = b.shfl_xor(acc, d);
        let s = b.iadd(acc, o);
        b.assign(acc, s);
    }
    let lane = b.lane_id();
    let lead = b.setp_u32_eq(lane, 0u32);
    b.if_(lead, |b| {
        let wid = b.shr(gid, 5u32);
        let es = b.lea(sums, wid, 2);
        b.st_global_u32(es, acc);
    });
    let kf = b.finish();

    let traps = Arc::new(Mutex::new(0u64));
    let t2 = traps.clone();
    let mut sassi = Sassi::new();
    sassi.on_before(
        SiteFilter::ALL,
        InfoFlags::NONE,
        Box::new(FnHandler::free(move |_| {
            *t2.lock() += 1;
        })),
    );

    let mut mb = ModuleBuilder::new();
    mb.add_kernel(kf);
    let module = mb.build(Some(&sassi)).unwrap();

    let mut rt = Runtime::with_defaults();
    let input: Vec<u32> = (0..128).collect();
    let d_src = rt.alloc_u32(&input);
    let d_dst = rt.alloc_zeroed_u32(128);
    let d_sums = rt.alloc_zeroed_u32(4);
    let res = rt
        .launch(
            &module,
            "revsum",
            LaunchDims::linear(2, 64),
            &[d_src.addr, d_dst.addr, d_sums.addr],
            &mut sassi,
        )
        .unwrap();
    assert!(res.is_ok(), "{:?}", res.outcome);

    let out = rt.read_u32(d_dst);
    for blk in 0..2u32 {
        for t in 0..64u32 {
            let gid = blk * 64 + t;
            assert_eq!(out[gid as usize], blk * 64 + (63 - t), "gid {gid}");
        }
    }
    let sums = rt.read_u32(d_sums);
    // Warp w of block b holds reversed values; each warp sum is the sum
    // of 32 consecutive values.
    let expect = |lo: u32| (lo..lo + 32).sum::<u32>();
    assert_eq!(sums[0], expect(32)); // block 0 warp 0 got values 63..32
    assert_eq!(sums[1], expect(0));
    assert_eq!(sums[2], expect(96));
    assert_eq!(sums[3], expect(64));
    assert!(*traps.lock() > 100, "instrumentation must have fired");
}

/// Multi-kernel module, SASS handler + native handler coexisting.
#[test]
fn sass_and_native_handlers_coexist() {
    // SASS handler counts every instruction into a device counter.
    let mut h = KernelBuilder::abi_function("count_all");
    let counters = h.iconst64(GLOBAL_HEAP_BASE);
    let one = h.iconst(1);
    h.red_global(sassi_isa::AtomOp::Add, counters, one);
    h.ret();

    // Two trivial kernels.
    let mk = |name: &str, mul: u32| {
        let mut b = KernelBuilder::kernel(name);
        let tid = b.global_tid_x();
        let out = b.param_ptr(0);
        let v = b.imul(tid, mul);
        let e = b.lea(out, tid, 2);
        b.st_global_u32(e, v);
        b.finish()
    };

    let mut mb = ModuleBuilder::new();
    let hidx = mb.add_sass_handler(h.finish());
    mb.add_kernel(mk("k2", 2));
    mb.add_kernel(mk("k3", 3));

    let native_hits = Arc::new(Mutex::new(0u64));
    let nh = native_hits.clone();
    let mut sassi = Sassi::new();
    sassi.on_before_sass(SiteFilter::MEMORY, InfoFlags::NONE, hidx);
    sassi.on_before(
        SiteFilter::MEMORY,
        InfoFlags::MEMORY,
        Box::new(FnHandler::free(move |site| {
            *nh.lock() += site.active_lanes().len() as u64;
        })),
    );
    let module = mb.build(Some(&sassi)).unwrap();

    let mut rt = Runtime::with_defaults();
    let dev_counter = rt.alloc_zeroed_u32(1);
    assert_eq!(dev_counter.addr, GLOBAL_HEAP_BASE);
    let out2 = rt.alloc_zeroed_u32(32);
    let out3 = rt.alloc_zeroed_u32(32);
    for (k, buf) in [("k2", out2), ("k3", out3)] {
        let res = rt
            .launch(
                &module,
                k,
                LaunchDims::linear(1, 32),
                &[buf.addr],
                &mut sassi,
            )
            .unwrap();
        assert!(res.is_ok());
    }
    assert_eq!(rt.read_u32(out2)[7], 14);
    assert_eq!(rt.read_u32(out3)[7], 21);
    // One store per thread per kernel, observed by BOTH handler kinds.
    assert_eq!(rt.read_u32(dev_counter)[0], 64);
    assert_eq!(*native_hits.lock(), 64);
}

/// The whole-application clock decomposes sensibly and instrumentation
/// shifts the kernel share upward.
#[test]
fn clock_reflects_instrumentation() {
    use sassi_workloads::{by_name, execute};
    let cfg = sassi_sim::GpuConfig::default();
    let w = by_name("histo").unwrap();
    let base = execute(w.as_ref(), None, None);
    assert!(base.output.is_ok());

    let mut sassi = Sassi::new();
    sassi.on_before(
        SiteFilter::ALL,
        InfoFlags::NONE,
        Box::new(FnHandler::free(|_| {})),
    );
    let inst = execute(w.as_ref(), Some(&mut sassi), None);
    assert!(inst.output.is_ok());

    let k0 = base.clock.kernel_seconds(&cfg);
    let k1 = inst.clock.kernel_seconds(&cfg);
    assert!(k1 > 3.0 * k0, "kernel time must grow: {k0} -> {k1}");
    // Host and transfer components are identical between runs.
    assert!((base.clock.host_seconds - inst.clock.host_seconds).abs() < 1e-9);
    assert_eq!(base.clock.transfer_bytes, inst.clock.transfer_bytes);
    // Whole-program slowdown is milder than kernel slowdown (histo is
    // host-dominated, the Table 3 effect).
    let t_ratio = inst.clock.total_seconds(&cfg) / base.clock.total_seconds(&cfg);
    let k_ratio = k1 / k0;
    assert!(t_ratio < k_ratio);
}

/// Kernel faults surface as sticky errors through the runtime, exactly
/// once, without poisoning later launches.
#[test]
fn faults_are_isolated_per_launch() {
    let mut b = KernelBuilder::kernel("oob");
    let out = b.param_ptr(0);
    let tid = b.global_tid_x();
    let big = b.iconst(1 << 20);
    let idx = b.iadd(tid, big);
    let e = b.lea(out, idx, 2);
    let v = b.iconst(1);
    b.st_global_u32(e, v);
    let bad = b.finish();

    let mut g = KernelBuilder::kernel("good");
    let out = g.param_ptr(0);
    let tid = g.global_tid_x();
    let e = g.lea(out, tid, 2);
    g.st_global_u32(e, tid);
    let good = g.finish();

    let mut mb = ModuleBuilder::new();
    mb.add_kernel(bad);
    mb.add_kernel(good);
    let module = mb.build(None).unwrap();

    let mut rt = Runtime::with_defaults();
    let buf = rt.alloc_zeroed_u32(64);
    let res = rt
        .launch(
            &module,
            "oob",
            LaunchDims::linear(1, 32),
            &[buf.addr],
            &mut NoHandlers,
        )
        .unwrap();
    assert!(matches!(res.outcome, sassi_sim::KernelOutcome::Fault(_)));
    // A later launch on the same device still works.
    let res = rt
        .launch(
            &module,
            "good",
            LaunchDims::linear(1, 32),
            &[buf.addr],
            &mut NoHandlers,
        )
        .unwrap();
    assert!(res.is_ok());
    assert_eq!(rt.read_u32(buf)[31], 31);
    assert!(!rt.all_ok());
}

/// The trampoline only touches the thread's local slab: the stream of
/// global-memory transactions (count and cache behaviour) must be
/// identical with and without instrumentation.
#[test]
fn instrumentation_preserves_global_traffic() {
    let mut b = KernelBuilder::kernel("traffic");
    let tid = b.global_tid_x();
    let buf = b.param_ptr(0);
    let scale = b.imul(tid, 97u32);
    let idx = b.and(scale, 0x3ffu32);
    let e = b.lea(buf, idx, 2);
    let v = b.ld_global_u32(e);
    let w = b.iadd(v, 1u32);
    let e2 = b.lea(buf, tid, 2);
    b.st_global_u32(e2, w);
    let kf = b.finish();

    let run = |sassi: Option<&mut Sassi>| {
        let mut mb = ModuleBuilder::new();
        mb.add_kernel(kf.clone());
        let module = mb.build(sassi.as_deref()).unwrap();
        let mut rt = Runtime::with_defaults();
        let buf = rt.alloc_zeroed_u32(4096);
        let res = match sassi {
            Some(s) => rt
                .launch(
                    &module,
                    "traffic",
                    LaunchDims::linear(8, 128),
                    &[buf.addr],
                    s,
                )
                .unwrap(),
            None => rt
                .launch(
                    &module,
                    "traffic",
                    LaunchDims::linear(8, 128),
                    &[buf.addr],
                    &mut NoHandlers,
                )
                .unwrap(),
        };
        assert!(res.is_ok());
        res.mem
    };

    let base = run(None);
    let mut sassi = Sassi::new();
    sassi.on_before(
        SiteFilter::ALL,
        InfoFlags::NONE,
        Box::new(FnHandler::free(|_| {})),
    );
    let traced = run(Some(&mut sassi));
    assert_eq!(
        base.transactions, traced.transactions,
        "instrumentation must not add global transactions"
    );
    assert_eq!(base.warp_accesses, traced.warp_accesses);
    assert_eq!(base.l1.accesses(), traced.l1.accesses());
}
