//! Property-based tests over the whole stack: randomly generated
//! programs must compute the same results as a host model, regardless
//! of register budget (spill correctness) or instrumentation
//! (trampoline transparency).

use proptest::prelude::*;
use sassi::{FnHandler, InfoFlags, Sassi, SiteFilter};
use sassi_kir::{Compiler, KernelBuilder, V32};
use sassi_mem::coalesce_addresses;
use sassi_sim::{Device, LaunchDims, Module, NoHandlers};

/// A tiny random program over a register bank: each step combines two
/// earlier values with one of several ops.
#[derive(Clone, Debug)]
enum Step {
    Add(usize, usize),
    Sub(usize, usize),
    Mul(usize, usize),
    Xor(usize, usize),
    Shl(usize, u32),
    Min(usize, usize),
    SelLt(usize, usize, usize), // v = if a < b { a } else { c }
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        (any::<usize>(), any::<usize>()).prop_map(|(a, b)| Step::Add(a, b)),
        (any::<usize>(), any::<usize>()).prop_map(|(a, b)| Step::Sub(a, b)),
        (any::<usize>(), any::<usize>()).prop_map(|(a, b)| Step::Mul(a, b)),
        (any::<usize>(), any::<usize>()).prop_map(|(a, b)| Step::Xor(a, b)),
        (any::<usize>(), 0u32..32).prop_map(|(a, s)| Step::Shl(a, s)),
        (any::<usize>(), any::<usize>()).prop_map(|(a, b)| Step::Min(a, b)),
        (any::<usize>(), any::<usize>(), any::<usize>()).prop_map(|(a, b, c)| Step::SelLt(a, b, c)),
    ]
}

/// Host model: evaluate the program for one thread id.
fn host_eval(seeds: &[u32], steps: &[Step], tid: u32) -> u32 {
    let mut vals: Vec<u32> = seeds.iter().map(|s| s.wrapping_add(tid)).collect();
    for st in steps {
        let n = vals.len();
        let v = match st {
            Step::Add(a, b) => vals[a % n].wrapping_add(vals[b % n]),
            Step::Sub(a, b) => vals[a % n].wrapping_sub(vals[b % n]),
            Step::Mul(a, b) => vals[a % n].wrapping_mul(vals[b % n]),
            Step::Xor(a, b) => vals[a % n] ^ vals[b % n],
            Step::Shl(a, s) => vals[a % n] << s,
            Step::Min(a, b) => vals[a % n].min(vals[b % n]),
            Step::SelLt(a, b, c) => {
                if vals[a % n] < vals[b % n] {
                    vals[a % n]
                } else {
                    vals[c % n]
                }
            }
        };
        vals.push(v);
    }
    // Fold everything so every intermediate is live at the end
    // (maximizing register pressure).
    vals.iter().fold(0u32, |acc, v| acc.wrapping_add(*v))
}

/// Device version of the same program.
fn build_kernel(seeds: &[u32], steps: &[Step]) -> sassi_kir::KFunction {
    let mut b = KernelBuilder::kernel("prog");
    let out = b.param_ptr(0);
    let tid = b.global_tid_x();
    let mut vals: Vec<V32> = seeds.iter().map(|&s| b.iadd(tid, s)).collect();
    for st in steps {
        let n = vals.len();
        let v = match st {
            Step::Add(a, c) => b.iadd(vals[a % n], vals[c % n]),
            Step::Sub(a, c) => b.isub(vals[a % n], vals[c % n]),
            Step::Mul(a, c) => b.imul(vals[a % n], vals[c % n]),
            Step::Xor(a, c) => b.xor(vals[a % n], vals[c % n]),
            Step::Shl(a, s) => b.shl(vals[a % n], *s),
            Step::Min(a, c) => b.umin(vals[a % n], vals[c % n]),
            Step::SelLt(a, c, d) => {
                let p = b.setp_u32_lt(vals[a % n], vals[c % n]);
                b.sel(p, vals[a % n], vals[d % n])
            }
        };
        vals.push(v);
    }
    let mut acc = b.iconst(0);
    for v in &vals {
        acc = b.iadd(acc, *v);
    }
    let e = b.lea(out, tid, 2);
    b.st_global_u32(e, acc);
    b.finish()
}

fn run_kernel(func: sassi_isa::Function, sassi: Option<&mut Sassi>) -> Vec<u32> {
    let module = Module::link(std::slice::from_ref(&func)).unwrap();
    let mut dev = Device::with_defaults();
    let out = dev.mem.alloc(64 * 4, 8).unwrap();
    let res = match sassi {
        Some(s) => dev
            .launch(
                &module,
                "prog",
                LaunchDims::linear(2, 32),
                &[out],
                s,
                0,
                1 << 32,
            )
            .unwrap(),
        None => dev
            .launch(
                &module,
                "prog",
                LaunchDims::linear(2, 32),
                &[out],
                &mut NoHandlers,
                0,
                1 << 32,
            )
            .unwrap(),
    };
    assert!(res.is_ok(), "{:?}", res.outcome);
    (0..64)
        .map(|i| dev.mem.read_u32(out + 4 * i).unwrap())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Spill correctness: a 16-register budget (heavy spilling) must
    /// compute exactly what a 63-register budget computes, and both
    /// must match the host model.
    #[test]
    fn register_budget_is_transparent(
        seeds in prop::collection::vec(any::<u32>(), 3..8),
        steps in prop::collection::vec(step_strategy(), 4..24),
    ) {
        let kf = build_kernel(&seeds, &steps);
        let wide = Compiler::new().compile(&kf).unwrap();
        let narrow = Compiler::new().max_regs(16).compile(&kf).unwrap();
        let a = run_kernel(wide, None);
        let c = run_kernel(narrow, None);
        prop_assert_eq!(&a, &c, "spilling changed results");
        for (tid, got) in a.iter().enumerate() {
            prop_assert_eq!(*got, host_eval(&seeds, &steps, tid as u32), "tid {}", tid);
        }
    }

    /// Trampoline transparency: instrumenting before every instruction
    /// (with full register saves/restores) must not change results.
    #[test]
    fn instrumentation_is_transparent(
        seeds in prop::collection::vec(any::<u32>(), 3..6),
        steps in prop::collection::vec(step_strategy(), 4..16),
    ) {
        let kf = build_kernel(&seeds, &steps);
        let func = Compiler::new().compile(&kf).unwrap();
        let plain = run_kernel(func.clone(), None);

        let mut sassi = Sassi::new();
        sassi.on_before(SiteFilter::ALL, InfoFlags::NONE, Box::new(FnHandler::free(|_| {})));
        let instr = sassi.apply(&func, 0);
        let traced = run_kernel(instr, Some(&mut sassi));
        prop_assert_eq!(plain, traced);
    }

    /// Coalescer invariants: 1 ≤ unique ≤ min(distinct lines, 32·span);
    /// permutation-independent; all-same-line collapses to 1.
    #[test]
    fn coalescer_invariants(
        addrs in prop::collection::vec(0u64..1_000_000, 1..32),
        rotate in 0usize..32,
    ) {
        let r = coalesce_addresses(&addrs, 4);
        prop_assert!(r.unique_lines() >= 1);
        prop_assert!(r.unique_lines() as usize <= 2 * addrs.len());
        let mut rotated = addrs.clone();
        rotated.rotate_left(rotate % addrs.len());
        let r2 = coalesce_addresses(&rotated, 4);
        prop_assert_eq!(r.unique_lines(), r2.unique_lines());

        let same = vec![addrs[0] & !31; addrs.len()];
        prop_assert_eq!(coalesce_addresses(&same, 4).unique_lines(), 1);
    }

    /// RegSet behaves like a set of register indices.
    #[test]
    fn regset_is_a_set(
        xs in prop::collection::vec(0u8..255, 0..64),
        ys in prop::collection::vec(0u8..255, 0..64),
    ) {
        use sassi_isa::{Gpr, RegSet};
        use std::collections::BTreeSet;
        let mk = |v: &Vec<u8>| -> RegSet {
            v.iter().map(|&i| Gpr::new(i.min(254))).collect()
        };
        let model = |v: &Vec<u8>| -> BTreeSet<u8> {
            v.iter().map(|&i| i.min(254)).collect()
        };
        let (a, b) = (mk(&xs), mk(&ys));
        let (ma, mb) = (model(&xs), model(&ys));

        let mut u = a;
        u.union_with(&b);
        let mu: BTreeSet<u8> = ma.union(&mb).copied().collect();
        prop_assert_eq!(u.iter_gprs().map(|g| g.index()).collect::<Vec<_>>(),
                        mu.iter().copied().collect::<Vec<_>>());

        let i = a.intersection(&b);
        let mi: BTreeSet<u8> = ma.intersection(&mb).copied().collect();
        prop_assert_eq!(i.iter_gprs().map(|g| g.index()).collect::<Vec<_>>(),
                        mi.iter().copied().collect::<Vec<_>>());

        let mut d = a;
        d.subtract(&b);
        let md: BTreeSet<u8> = ma.difference(&mb).copied().collect();
        prop_assert_eq!(d.iter_gprs().map(|g| g.index()).collect::<Vec<_>>(),
                        md.iter().copied().collect::<Vec<_>>());
        prop_assert_eq!(d.gpr_count() as usize, md.len());
    }
}

// ---------------------------------------------------------------------
// Random nested control flow: the divergence stack and the trampolines
// must compose for arbitrary structured programs.

#[derive(Clone, Debug)]
enum CfNode {
    Compute(Step),
    If { bit: u8, then_n: u8, else_n: u8 },
}

fn cf_strategy() -> impl Strategy<Value = Vec<CfNode>> {
    let node = prop_oneof![
        step_strategy().prop_map(CfNode::Compute),
        (0u8..5, 1u8..4, 0u8..4).prop_map(|(bit, t, e)| CfNode::If {
            bit,
            then_n: t,
            else_n: e
        }),
    ];
    prop::collection::vec(node, 2..14)
}

fn host_eval_cf(seeds: &[u32], nodes: &[CfNode], tid: u32) -> u32 {
    let mut vals: Vec<u32> = seeds.iter().map(|s| s.wrapping_add(tid)).collect();
    fn apply(vals: &mut Vec<u32>, st: &Step) {
        let n = vals.len();
        let v = match st {
            Step::Add(a, b) => vals[a % n].wrapping_add(vals[b % n]),
            Step::Sub(a, b) => vals[a % n].wrapping_sub(vals[b % n]),
            Step::Mul(a, b) => vals[a % n].wrapping_mul(vals[b % n]),
            Step::Xor(a, b) => vals[a % n] ^ vals[b % n],
            Step::Shl(a, s) => vals[a % n] << s,
            Step::Min(a, b) => vals[a % n].min(vals[b % n]),
            Step::SelLt(a, b, c) => {
                if vals[a % n] < vals[b % n] {
                    vals[a % n]
                } else {
                    vals[c % n]
                }
            }
        };
        vals.push(v);
    }
    let mut i = 0;
    while i < nodes.len() {
        match &nodes[i] {
            CfNode::Compute(st) => apply(&mut vals, st),
            CfNode::If {
                bit,
                then_n,
                else_n,
            } => {
                // Taken lanes double the last value then_n times; others
                // add 13 else_n times. Both arms also push one value.
                let taken = (tid >> bit) & 1 == 1;
                let last = *vals.last().unwrap();
                if taken {
                    let mut v = last;
                    for _ in 0..*then_n {
                        v = v.wrapping_mul(2).wrapping_add(1);
                    }
                    vals.push(v);
                } else {
                    let mut v = last;
                    for _ in 0..*else_n {
                        v = v.wrapping_add(13);
                    }
                    vals.push(v);
                }
            }
        }
        i += 1;
    }
    vals.iter().fold(0u32, |acc, v| acc.wrapping_add(*v))
}

fn build_cf_kernel(seeds: &[u32], nodes: &[CfNode]) -> sassi_kir::KFunction {
    let mut b = KernelBuilder::kernel("prog");
    let out = b.param_ptr(0);
    let tid = b.global_tid_x();
    let mut vals: Vec<V32> = seeds.iter().map(|&s| b.iadd(tid, s)).collect();
    for node in nodes {
        match node {
            CfNode::Compute(st) => {
                let n = vals.len();
                let v = match st {
                    Step::Add(a, c) => b.iadd(vals[a % n], vals[c % n]),
                    Step::Sub(a, c) => b.isub(vals[a % n], vals[c % n]),
                    Step::Mul(a, c) => b.imul(vals[a % n], vals[c % n]),
                    Step::Xor(a, c) => b.xor(vals[a % n], vals[c % n]),
                    Step::Shl(a, s) => b.shl(vals[a % n], *s),
                    Step::Min(a, c) => b.umin(vals[a % n], vals[c % n]),
                    Step::SelLt(a, c, d) => {
                        let p = b.setp_u32_lt(vals[a % n], vals[c % n]);
                        b.sel(p, vals[a % n], vals[d % n])
                    }
                };
                vals.push(v);
            }
            CfNode::If {
                bit,
                then_n,
                else_n,
            } => {
                let last = *vals.last().unwrap();
                let shifted = b.shr(last, 0u32); // copy via shr 0
                let _ = shifted;
                let t = b.shr(tid, *bit as u32);
                let tb = b.and(t, 1u32);
                let taken = b.setp_u32_eq(tb, 1u32);
                let result = b.var_u32(0u32);
                b.if_else(
                    taken,
                    |b| {
                        let mut v = last;
                        for _ in 0..*then_n {
                            let one = b.iconst(1);
                            v = b.imad(v, 2u32, one);
                        }
                        b.assign(result, v);
                    },
                    |b| {
                        let mut v = last;
                        for _ in 0..*else_n {
                            v = b.iadd(v, 13u32);
                        }
                        b.assign(result, v);
                    },
                );
                vals.push(result);
            }
        }
    }
    let mut acc = b.iconst(0);
    for v in &vals {
        acc = b.iadd(acc, *v);
    }
    let e = b.lea(out, tid, 2);
    b.st_global_u32(e, acc);
    b.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// Random nested divergent control flow must reconverge correctly,
    /// match the host model, survive register caps, and be untouched by
    /// full instrumentation.
    #[test]
    fn nested_divergence_is_correct_and_transparent(
        seeds in prop::collection::vec(any::<u32>(), 2..5),
        nodes in cf_strategy(),
    ) {
        let kf = build_cf_kernel(&seeds, &nodes);
        let func = Compiler::new().compile(&kf).unwrap();
        let plain = run_kernel(func.clone(), None);
        for (tid, got) in plain.iter().enumerate() {
            prop_assert_eq!(*got, host_eval_cf(&seeds, &nodes, tid as u32), "tid {}", tid);
        }
        // Spilled variant agrees.
        let narrow = Compiler::new().max_regs(16).compile(&kf).unwrap();
        prop_assert_eq!(&plain, &run_kernel(narrow, None));
        // Fully instrumented variant agrees.
        let mut sassi = Sassi::new();
        sassi.on_before(SiteFilter::ALL, InfoFlags::NONE, Box::new(FnHandler::free(|_| {})));
        let instr = sassi.apply(&func, 0);
        prop_assert_eq!(&plain, &run_kernel(instr, Some(&mut sassi)));
    }
}
